package failure

import (
	"context"
	"errors"
	"testing"

	"ropus/internal/faultinject"
	"ropus/internal/placement"
	"ropus/internal/robust"
)

// basePlanFor evaluates the identity assignment for a 3x6-on-10 pool,
// which both Analyze tests start from.
func basePlanFor(t *testing.T, p *placement.Problem) *placement.Plan {
	t.Helper()
	base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Feasible {
		t.Fatal("base plan should be feasible")
	}
	return base
}

func TestChaosScenarioErrorRecorded(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base := basePlanFor(t, p)
	in := Input{
		Problem:     p,
		FailureApps: failureApps(p, 0.5),
		GA:          ga(),
		Inject: faultinject.MustScript(1,
			faultinject.Rule{Point: "failure.scenario", Key: "srv-b"}),
	}
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatalf("partial failure should not abort the sweep: %v", err)
	}
	if len(report.Scenarios) != 3 {
		t.Fatalf("want all 3 scenarios recorded, got %d", len(report.Scenarios))
	}
	for _, sc := range report.Scenarios {
		if sc.FailedServer == "srv-b" {
			if !errors.Is(sc.Err, faultinject.ErrInjected) {
				t.Errorf("srv-b scenario should record the injected error, got %v", sc.Err)
			}
			if sc.Feasible {
				t.Error("errored scenario must not claim feasibility")
			}
		} else if sc.Err != nil {
			t.Errorf("scenario %s unexpectedly errored: %v", sc.FailedServer, sc.Err)
		} else if !sc.Feasible {
			t.Errorf("scenario %s should be absorbable", sc.FailedServer)
		}
	}
	if report.SpareNeeded {
		t.Error("an inconclusive (errored) scenario must not set SpareNeeded")
	}
	if got := report.Errors(); len(got) != 1 {
		t.Errorf("Errors() = %v, want exactly one", got)
	}
}

func TestChaosAllScenariosErrorAborts(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base := basePlanFor(t, p)
	in := Input{
		Problem:     p,
		FailureApps: failureApps(p, 0.5),
		GA:          ga(),
		Inject: faultinject.MustScript(1,
			faultinject.Rule{Point: "failure.scenario"}), // every scenario
	}
	report, err := Analyze(context.Background(), in, base)
	if err == nil {
		t.Fatalf("all-scenarios-errored sweep should fail, got %+v", report)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("top-level error should wrap the injected cause, got %v", err)
	}
}

func TestCancelAnalyzePartialReport(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base := basePlanFor(t, p)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel while the first scenario is being analyzed: the scenario
	// completes (its consolidation degrades to best-so-far) and the
	// sweep truncates at the next boundary.
	in := Input{
		Problem:     p,
		FailureApps: failureApps(p, 0.5),
		GA:          ga(),
		Workers:     1, // the completed-count assertion below assumes a serial sweep
		Inject: faultinject.Func(func(point, key string) faultinject.Outcome {
			cancel()
			return faultinject.Outcome{}
		}),
	}
	report, err := Analyze(ctx, in, base)
	if err != nil {
		t.Fatalf("cancelled sweep should degrade, got %v", err)
	}
	if !report.Truncated {
		t.Error("cancelled sweep should be flagged Truncated")
	}
	if len(report.Scenarios) != 1 {
		t.Errorf("want the 1 completed scenario, got %d", len(report.Scenarios))
	}
}

func TestCancelAnalyzeDeadline(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base := basePlanFor(t, p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: nothing gets analyzed
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	report, err := Analyze(ctx, in, base)
	if err != nil {
		t.Fatalf("cancelled sweep should degrade, got %v", err)
	}
	if !report.Truncated || len(report.Scenarios) != 0 {
		t.Errorf("want empty truncated report, got truncated=%v scenarios=%d",
			report.Truncated, len(report.Scenarios))
	}
}

func TestChaosAnalyzeMultiScenarioError(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base := basePlanFor(t, p)
	in := Input{
		Problem:     p,
		FailureApps: failureApps(p, 0.3),
		GA:          ga(),
		Inject: faultinject.MustScript(1,
			faultinject.Rule{Point: "failure.scenario", Key: "srv-a+srv-b"}),
	}
	report, err := AnalyzeMulti(context.Background(), in, base, 2)
	if err != nil {
		t.Fatalf("partial failure should not abort the sweep: %v", err)
	}
	if len(report.Scenarios) != 3 { // C(3,2)
		t.Fatalf("want 3 combinations, got %d", len(report.Scenarios))
	}
	errored := 0
	for _, sc := range report.Scenarios {
		if sc.Err != nil {
			errored++
			if sc.Key() != "srv-a+srv-b" {
				t.Errorf("wrong combination errored: %s", sc.Key())
			}
			if len(sc.FailedServers) != 2 {
				t.Errorf("errored scenario lost its identity: %v", sc.FailedServers)
			}
		}
	}
	if errored != 1 {
		t.Errorf("want exactly 1 errored combination, got %d", errored)
	}
}

func TestChaosAnalyzePanicRecovered(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base := basePlanFor(t, p)
	in := Input{
		Problem:     p,
		FailureApps: failureApps(p, 0.5),
		GA:          ga(),
		Inject: faultinject.Func(func(point, key string) faultinject.Outcome {
			panic("chaos monkey")
		}),
	}
	// The panic fires inside a scenario's consolidation; the package
	// boundary converts it into an error instead of crashing the caller.
	report, err := Analyze(context.Background(), in, base)
	if err == nil {
		t.Fatalf("want recovered panic error, got %+v", report)
	}
	if !errors.Is(err, robust.ErrPanic) {
		t.Errorf("error should wrap robust.ErrPanic, got %v", err)
	}
}
