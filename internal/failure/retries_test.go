package failure

import (
	"errors"
	"testing"
)

// TestReportRetriesAccounting pins the gave-up semantics to the
// per-scenario GaveUp record: a single-attempt policy's failure counts,
// a cancellation-stopped scenario does not, and inference from
// Attempts > 1 is gone.
func TestReportRetriesAccounting(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		name                     string
		scenarios                []Scenario
		extra, recovered, gaveUp int
	}{
		{name: "empty report"},
		{
			name:      "clean single attempts",
			scenarios: []Scenario{{Attempts: 1}, {Attempts: 1}},
		},
		{
			name:      "recovered after retries",
			scenarios: []Scenario{{Attempts: 3, Recovered: true}, {Attempts: 1}},
			extra:     2, recovered: 1,
		},
		{
			name:      "single-attempt policy gave up",
			scenarios: []Scenario{{Attempts: 1, Err: boom, GaveUp: true}},
			gaveUp:    1,
		},
		{
			name:      "exhausted retries gave up",
			scenarios: []Scenario{{Attempts: 3, Err: boom, GaveUp: true}},
			extra:     2, gaveUp: 1,
		},
		{
			name: "cancellation stops attempts without giving up",
			// Err is set (the ctx error) but GaveUp is false: the sweep
			// was cancelled, the policy never exhausted.
			scenarios: []Scenario{{Attempts: 2, Err: boom}},
			extra:     1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Report{Scenarios: tc.scenarios}
			extra, recovered, gaveUp := r.Retries()
			if extra != tc.extra || recovered != tc.recovered || gaveUp != tc.gaveUp {
				t.Errorf("Retries() = (%d, %d, %d), want (%d, %d, %d)",
					extra, recovered, gaveUp, tc.extra, tc.recovered, tc.gaveUp)
			}
		})
	}
}

// TestMultiReportRetriesAccounting mirrors the single-failure case for
// k-failure sweeps.
func TestMultiReportRetriesAccounting(t *testing.T) {
	boom := errors.New("boom")
	r := &MultiReport{Scenarios: []MultiScenario{
		{Attempts: 1},
		{Attempts: 2, Recovered: true},
		{Attempts: 1, Err: boom, GaveUp: true},
		{Attempts: 2, Err: boom}, // cancelled, not exhausted
	}}
	extra, recovered, gaveUp := r.Retries()
	if extra != 2 || recovered != 1 || gaveUp != 1 {
		t.Errorf("Retries() = (%d, %d, %d), want (2, 1, 1)", extra, recovered, gaveUp)
	}
}
