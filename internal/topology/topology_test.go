package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", `{"domains":[]}`, "no domains"},
		{"dup id", `{"domains":[{"id":"a","kind":"zone"},{"id":"a","kind":"rack"}]}`, "duplicate domain ID"},
		{"no kind", `{"domains":[{"id":"a"}]}`, "no kind"},
		{"unknown parent", `{"domains":[{"id":"a","kind":"rack","parent":"nope"}]}`, "unknown parent"},
		{"self parent", `{"domains":[{"id":"a","kind":"rack","parent":"a"}]}`, "own parent"},
		{"cycle", `{"domains":[{"id":"a","kind":"zone","parent":"b"},{"id":"b","kind":"zone","parent":"a"}]}`, "cycle"},
		{"dup server", `{"domains":[{"id":"a","kind":"rack","servers":["s1","s1"]}]}`, "twice"},
		{"empty server", `{"domains":[{"id":"a","kind":"rack","servers":[""]}]}`, "empty server"},
		{"unknown field", `{"domains":[{"id":"a","kind":"rack","bogus":1}]}`, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("ReadJSON accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestServersInClosure(t *testing.T) {
	doc := `{"domains":[
		{"id":"zone-a","kind":"zone"},
		{"id":"rack-1","kind":"rack","parent":"zone-a","servers":["srv-03","srv-01"]},
		{"id":"rack-2","kind":"rack","parent":"zone-a","servers":["srv-02"]},
		{"id":"power-1","kind":"power","servers":["srv-01","srv-02"]}
	]}`
	topo, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := topo.ServersIn("zone-a")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"srv-01", "srv-02", "srv-03"}
	if len(got) != len(want) {
		t.Fatalf("zone-a servers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zone-a servers = %v, want %v (sorted)", got, want)
		}
	}
	if _, err := topo.ServersIn("nope"); err == nil {
		t.Error("ServersIn accepted an unknown domain")
	}
	if kinds := topo.DomainsOfKind(KindRack); len(kinds) != 2 {
		t.Errorf("DomainsOfKind(rack) = %v", kinds)
	}
	if all := topo.AllServers(); len(all) != 3 {
		t.Errorf("AllServers = %v", all)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := GenConfig{Servers: 9, Zones: 2, RacksPerZone: 2, PowerDomains: 3}
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("Synthesize is not deterministic")
	}
	// Every server lands in exactly one rack and one power domain.
	if all := a.AllServers(); len(all) != 9 {
		t.Fatalf("AllServers = %v, want 9 servers", all)
	}
	counts := make(map[string]int)
	for _, rack := range a.DomainsOfKind(KindRack) {
		srvs, err := a.ServersIn(rack)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range srvs {
			counts[s]++
		}
	}
	for s, n := range counts {
		if n != 1 {
			t.Errorf("server %s appears in %d racks", s, n)
		}
	}
	// Zones partition the pool.
	zoneTotal := 0
	for _, z := range a.DomainsOfKind(KindZone) {
		srvs, err := a.ServersIn(z)
		if err != nil {
			t.Fatal(err)
		}
		zoneTotal += len(srvs)
	}
	if zoneTotal != 9 {
		t.Errorf("zones cover %d servers, want 9", zoneTotal)
	}
	// Round-trip through JSON preserves structure.
	rt, err := ReadJSON(&bufA)
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(rt.Domains) != len(a.Domains) {
		t.Errorf("round-trip lost domains: %d vs %d", len(rt.Domains), len(a.Domains))
	}
}

func TestSynthesizeRejections(t *testing.T) {
	for _, cfg := range []GenConfig{
		{Servers: 0, Zones: 1, RacksPerZone: 1},
		{Servers: 4, Zones: 0, RacksPerZone: 1},
		{Servers: 2, Zones: 2, RacksPerZone: 2}, // more racks than servers
		{Servers: 4, Zones: 1, RacksPerZone: 1, PowerDomains: -1},
	} {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("Synthesize(%+v) succeeded, want error", cfg)
		}
	}
}
