// Package topology models the physical structure of a shared resource
// pool: servers grouped into racks, racks into zones, and cross-cutting
// power domains. Failure planning uses it to turn "zone A fails" into a
// concrete set of servers, which is how shared pools actually fail —
// correlated groups, not one machine at a time.
//
// The model is a forest of domains. Each domain has a kind (rack, zone,
// power, or anything else the operator names), an optional parent, and
// a set of member servers. Membership is transitive: the servers of a
// zone are the servers of every rack inside it plus any listed
// directly. A server may appear under several domains of different
// kinds (its rack and its power feed), which is exactly the
// cross-cutting structure that makes correlated failures interesting.
package topology

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"ropus/internal/checkpoint"
)

// Well-known domain kinds. Kind is free-form; these are the ones the
// synthesizer emits and the documentation names.
const (
	KindZone  = "zone"
	KindRack  = "rack"
	KindPower = "power"
)

// Domain is one node of the topology forest.
type Domain struct {
	// ID names the domain; unique across the topology.
	ID string `json:"id"`
	// Kind classifies the domain (zone, rack, power, ...).
	Kind string `json:"kind"`
	// Parent is the enclosing domain's ID; empty for a root.
	Parent string `json:"parent,omitempty"`
	// Servers are the member servers listed directly on this domain
	// (children contribute theirs transitively).
	Servers []string `json:"servers,omitempty"`
}

// Topology is a validated forest of domains.
type Topology struct {
	Domains []Domain `json:"domains"`

	// byID indexes Domains; children maps a domain to its child IDs.
	// Both are built by Validate.
	byID     map[string]*Domain
	children map[string][]string
}

// DecodeError is the typed error for structurally invalid topology
// documents, so fuzzers and callers can tell bad input from I/O faults.
type DecodeError struct{ Reason string }

func (e *DecodeError) Error() string { return "topology: " + e.Reason }

// ReadJSON decodes and validates a topology document.
func ReadJSON(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, &DecodeError{Reason: err.Error()}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// WriteJSON renders the topology as indented JSON.
func (t *Topology) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Validate checks the forest's structural invariants and builds the
// lookup indexes: unique domain IDs, parents that exist, no parent
// cycles, and no duplicate server within a single domain's direct list.
func (t *Topology) Validate() error {
	if len(t.Domains) == 0 {
		return &DecodeError{Reason: "no domains"}
	}
	t.byID = make(map[string]*Domain, len(t.Domains))
	t.children = make(map[string][]string)
	for i := range t.Domains {
		d := &t.Domains[i]
		if d.ID == "" {
			return &DecodeError{Reason: fmt.Sprintf("domain %d has no ID", i)}
		}
		if d.Kind == "" {
			return &DecodeError{Reason: fmt.Sprintf("domain %q has no kind", d.ID)}
		}
		if _, dup := t.byID[d.ID]; dup {
			return &DecodeError{Reason: fmt.Sprintf("duplicate domain ID %q", d.ID)}
		}
		t.byID[d.ID] = d
		seen := make(map[string]bool, len(d.Servers))
		for _, s := range d.Servers {
			if s == "" {
				return &DecodeError{Reason: fmt.Sprintf("domain %q lists an empty server ID", d.ID)}
			}
			if seen[s] {
				return &DecodeError{Reason: fmt.Sprintf("domain %q lists server %q twice", d.ID, s)}
			}
			seen[s] = true
		}
	}
	for i := range t.Domains {
		d := &t.Domains[i]
		if d.Parent == "" {
			continue
		}
		if d.Parent == d.ID {
			return &DecodeError{Reason: fmt.Sprintf("domain %q is its own parent", d.ID)}
		}
		if _, ok := t.byID[d.Parent]; !ok {
			return &DecodeError{Reason: fmt.Sprintf("domain %q has unknown parent %q", d.ID, d.Parent)}
		}
		t.children[d.Parent] = append(t.children[d.Parent], d.ID)
	}
	// Parent chains must terminate: walk each domain rootwards with a
	// step bound of the domain count. (A cycle never reaches a root.)
	for _, d := range t.Domains {
		cur, steps := d.Parent, 0
		for cur != "" {
			if steps++; steps > len(t.Domains) {
				return &DecodeError{Reason: fmt.Sprintf("parent cycle through domain %q", d.ID)}
			}
			cur = t.byID[cur].Parent
		}
	}
	return nil
}

// Domain returns the named domain, if present. Validate must have run
// (ReadJSON and Synthesize both do).
func (t *Topology) Domain(id string) (*Domain, bool) {
	d, ok := t.byID[id]
	return d, ok
}

// DomainsOfKind lists the IDs of every domain of the given kind, in
// document order.
func (t *Topology) DomainsOfKind(kind string) []string {
	var out []string
	for _, d := range t.Domains {
		if d.Kind == kind {
			out = append(out, d.ID)
		}
	}
	return out
}

// ServersIn returns the transitive server membership of a domain —
// its direct servers plus those of every descendant — sorted and
// deduplicated, so callers get a deterministic failure set.
func (t *Topology) ServersIn(id string) ([]string, error) {
	if _, ok := t.byID[id]; !ok {
		return nil, fmt.Errorf("topology: unknown domain %q", id)
	}
	seen := make(map[string]bool)
	stack := []string{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range t.byID[cur].Servers {
			seen[s] = true
		}
		stack = append(stack, t.children[cur]...)
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// AllServers returns every server referenced anywhere in the topology,
// sorted and deduplicated.
func (t *Topology) AllServers() []string {
	seen := make(map[string]bool)
	for _, d := range t.Domains {
		for _, s := range d.Servers {
			seen[s] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Fold mixes the topology's result-determining content into a run
// hash, so a checkpoint journal recorded against one topology cannot
// silently resume another.
func (t *Topology) Fold(h *checkpoint.Hasher) {
	h.Int(int64(len(t.Domains)))
	for _, d := range t.Domains {
		h.String(d.ID).String(d.Kind).String(d.Parent).Int(int64(len(d.Servers)))
		for _, s := range d.Servers {
			h.String(s)
		}
	}
}

// GenConfig parameterizes Synthesize.
type GenConfig struct {
	// Servers is the pool size; server IDs are ServerID(i) for
	// i in [0, Servers).
	Servers int
	// Zones is the number of zones; racks are split evenly across them.
	Zones int
	// RacksPerZone is the number of racks inside each zone.
	RacksPerZone int
	// PowerDomains stripes servers across independent power feeds
	// (server i belongs to feed i mod PowerDomains); 0 disables them.
	PowerDomains int
	// ServerID names server i; nil selects srv-01, srv-02, ...
	// matching the placement problems core builds.
	ServerID func(i int) string
}

// Synthesize builds a deterministic topology for a synthetic pool:
// servers round-robined into racks, racks nested into zones, and
// optional power domains cutting across both. The result depends only
// on the configuration.
func Synthesize(cfg GenConfig) (*Topology, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("topology: Servers %d <= 0", cfg.Servers)
	}
	if cfg.Zones <= 0 || cfg.RacksPerZone <= 0 {
		return nil, fmt.Errorf("topology: need positive Zones and RacksPerZone, got %d/%d",
			cfg.Zones, cfg.RacksPerZone)
	}
	if cfg.PowerDomains < 0 {
		return nil, fmt.Errorf("topology: PowerDomains %d < 0", cfg.PowerDomains)
	}
	name := cfg.ServerID
	if name == nil {
		name = func(i int) string { return fmt.Sprintf("srv-%02d", i+1) }
	}
	racks := cfg.Zones * cfg.RacksPerZone
	if racks > cfg.Servers {
		return nil, fmt.Errorf("topology: %d racks for %d servers", racks, cfg.Servers)
	}
	t := &Topology{}
	for z := 0; z < cfg.Zones; z++ {
		t.Domains = append(t.Domains, Domain{
			ID:   fmt.Sprintf("zone-%c", 'a'+z),
			Kind: KindZone,
		})
	}
	rackServers := make([][]string, racks)
	for i := 0; i < cfg.Servers; i++ {
		r := i % racks
		rackServers[r] = append(rackServers[r], name(i))
	}
	for r := 0; r < racks; r++ {
		t.Domains = append(t.Domains, Domain{
			ID:      fmt.Sprintf("rack-%02d", r+1),
			Kind:    KindRack,
			Parent:  fmt.Sprintf("zone-%c", 'a'+r/cfg.RacksPerZone),
			Servers: rackServers[r],
		})
	}
	for p := 0; p < cfg.PowerDomains; p++ {
		var members []string
		for i := p; i < cfg.Servers; i += cfg.PowerDomains {
			members = append(members, name(i))
		}
		t.Domains = append(t.Domains, Domain{
			ID:      fmt.Sprintf("power-%02d", p+1),
			Kind:    KindPower,
			Servers: members,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ErrNoTopology reports an operation that needs a topology when none
// was provided (scenario compilation with domain references).
var ErrNoTopology = errors.New("topology: scenario references a domain but no topology was provided")
