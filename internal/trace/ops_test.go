package trace

import (
	"math"
	"testing"
	"time"
)

func hourly(t *testing.T, id string, days int, fill func(i int) float64) *Trace {
	t.Helper()
	samples := make([]float64, days*24)
	for i := range samples {
		samples[i] = fill(i)
	}
	tr, err := New(id, time.Hour, samples)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWindow(t *testing.T) {
	tr := hourly(t, "a", 14, func(i int) float64 { return float64(i) })
	win, err := tr.Window(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if win.Days() != 3 {
		t.Errorf("window days = %d, want 3", win.Days())
	}
	if win.Samples[0] != 48 || win.Samples[len(win.Samples)-1] != 48+3*24-1 {
		t.Errorf("window content wrong: first %v last %v", win.Samples[0], win.Samples[len(win.Samples)-1])
	}
	// No shared storage.
	win.Samples[0] = -1 // window copies are private; the original keeps 48
	if tr.Samples[48] != 48 {
		t.Error("Window shares storage")
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 0}, {13, 2}, {0, 15}} {
		if _, err := tr.Window(bad[0], bad[1]); err == nil {
			t.Errorf("Window(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestLastWeeks(t *testing.T) {
	tr := hourly(t, "a", 21, func(i int) float64 { return float64(i / (7 * 24)) }) // week index
	last, err := tr.LastWeeks(2)
	if err != nil {
		t.Fatal(err)
	}
	if last.Weeks() != 2 {
		t.Errorf("weeks = %d, want 2", last.Weeks())
	}
	if last.Samples[0] != 1 || last.Samples[len(last.Samples)-1] != 2 {
		t.Errorf("LastWeeks content wrong: %v..%v", last.Samples[0], last.Samples[len(last.Samples)-1])
	}
	if _, err := tr.LastWeeks(0); err == nil {
		t.Error("LastWeeks(0) accepted")
	}
	if _, err := tr.LastWeeks(4); err == nil {
		t.Error("LastWeeks beyond history accepted")
	}
}

func TestResample(t *testing.T) {
	tr := hourly(t, "a", 1, func(i int) float64 { return float64(i % 2) }) // 0,1,0,1,...
	mean, err := tr.Resample(2*time.Hour, ResampleMean)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Len() != 12 || mean.Interval != 2*time.Hour {
		t.Fatalf("mean resample: len %d interval %v", mean.Len(), mean.Interval)
	}
	for i, v := range mean.Samples {
		if v != 0.5 {
			t.Errorf("mean[%d] = %v, want 0.5", i, v)
		}
	}
	max, err := tr.Resample(2*time.Hour, ResampleMax)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range max.Samples {
		if v != 1 {
			t.Errorf("max[%d] = %v, want 1", i, v)
		}
	}

	if _, err := tr.Resample(90*time.Minute, ResampleMean); err == nil {
		t.Error("non-multiple interval accepted")
	}
	if _, err := tr.Resample(0, ResampleMean); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := tr.Resample(2*time.Hour, ResampleMethod(99)); err == nil {
		t.Error("unknown method accepted")
	}
	// 25h does not divide a day.
	if _, err := tr.Resample(25*time.Hour, ResampleMean); err == nil {
		t.Error("interval not dividing 24h accepted")
	}
}

func TestResampleMethodString(t *testing.T) {
	if ResampleMean.String() != "mean" || ResampleMax.String() != "max" {
		t.Error("unexpected method strings")
	}
	if got := ResampleMethod(5).String(); got != "ResampleMethod(5)" {
		t.Errorf("unknown method String = %q", got)
	}
}

func TestConcat(t *testing.T) {
	a := hourly(t, "a", 1, func(i int) float64 { return 1 })
	b := hourly(t, "a", 2, func(i int) float64 { return 2 })
	out, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Days() != 3 {
		t.Errorf("days = %d, want 3", out.Days())
	}
	if out.Samples[0] != 1 || out.Samples[30] != 2 {
		t.Error("concat content wrong")
	}

	other := hourly(t, "b", 1, func(i int) float64 { return 1 })
	if _, err := a.Concat(other); err == nil {
		t.Error("app ID mismatch accepted")
	}
	short := &Trace{AppID: "a", Interval: 30 * time.Minute, Samples: []float64{1}}
	if _, err := a.Concat(short); err == nil {
		t.Error("interval mismatch accepted")
	}
	if _, err := a.Concat(nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestForecastWeeksMultiplicativeTrend(t *testing.T) {
	// Demand grows 10% of the base level per week with a fixed diurnal
	// shape: value = (1 + 0.1*week) * shape(pos). The mean-week /
	// weekly-level decomposition recovers it exactly.
	slotsPerWeek := 7 * 24
	shape := func(pos int) float64 { return 1 + float64(pos%24)/24 }
	samples := make([]float64, 3*slotsPerWeek)
	for i := range samples {
		week := i / slotsPerWeek
		pos := i % slotsPerWeek
		samples[i] = (1 + 0.1*float64(week)) * shape(pos)
	}
	tr, err := New("a", time.Hour, samples)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ForecastWeeks(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Weeks() != 2 {
		t.Fatalf("forecast weeks = %d, want 2", fc.Weeks())
	}
	for i, v := range fc.Samples {
		week := 3 + i/slotsPerWeek
		pos := i % slotsPerWeek
		want := (1 + 0.1*float64(week)) * shape(pos)
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("forecast[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestForecastWeeksRobustToOneOffBurst(t *testing.T) {
	// A flat workload with a single large burst in the last week must
	// not be extrapolated into a runaway trend: the projected weekly
	// mean can only grow by the burst's contribution to the weekly
	// level, not by a per-slot slope.
	slotsPerWeek := 7 * 24
	samples := make([]float64, 4*slotsPerWeek)
	for i := range samples {
		samples[i] = 1.0
	}
	// 6-hour burst of 20 CPUs in week 3.
	for i := 3*slotsPerWeek + 40; i < 3*slotsPerWeek+46; i++ {
		samples[i] = 20
	}
	tr, err := New("a", time.Hour, samples)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ForecastWeeks(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	peak := fc.Peak()
	if peak > 2*tr.Peak() {
		t.Errorf("forecast peak %v exploded beyond 2x the observed peak %v", peak, tr.Peak())
	}
}

func TestForecastWeeksClampsNegative(t *testing.T) {
	// Strong downward trend: projections would go negative.
	slotsPerWeek := 7 * 24
	samples := make([]float64, 2*slotsPerWeek)
	for i := range samples {
		week := i / slotsPerWeek
		samples[i] = 1 - float64(week) // 1 then 0
	}
	tr, err := New("a", time.Hour, samples)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ForecastWeeks(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fc.Samples {
		if v < 0 {
			t.Fatalf("forecast[%d] = %v < 0", i, v)
		}
	}
	if err := fc.Validate(); err != nil {
		t.Errorf("forecast invalid: %v", err)
	}
}

func TestForecastWeeksErrors(t *testing.T) {
	oneWeek := hourly(t, "a", 7, func(i int) float64 { return 1 })
	if _, err := ForecastWeeks(oneWeek, 1); err == nil {
		t.Error("single-week history accepted")
	}
	twoWeeks := hourly(t, "a", 14, func(i int) float64 { return 1 })
	if _, err := ForecastWeeks(twoWeeks, 0); err == nil {
		t.Error("zero forecast weeks accepted")
	}
	broken := &Trace{AppID: "a", Interval: time.Hour}
	if _, err := ForecastWeeks(broken, 1); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestForecastThenConcatFeedsPlacement(t *testing.T) {
	// The intended workflow: history + forecast forms a longer trace
	// that still validates and keeps the calendar structure.
	tr := hourly(t, "a", 14, func(i int) float64 { return 1 + float64(i)/1000 })
	fc, err := ForecastWeeks(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.Concat(fc)
	if err != nil {
		t.Fatal(err)
	}
	if full.Weeks() != 3 {
		t.Errorf("combined weeks = %d, want 3", full.Weeks())
	}
	if err := full.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyGrowth(t *testing.T) {
	tr := hourly(t, "a", 1, func(i int) float64 { return 2 })
	grown, err := ApplyGrowth(tr, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range grown.Samples {
		if v != 3 {
			t.Fatalf("grown sample = %v, want 3", v)
		}
	}
	if _, err := ApplyGrowth(tr, -1); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := ApplyGrowth(tr, math.NaN()); err == nil {
		t.Error("NaN factor accepted")
	}
}
