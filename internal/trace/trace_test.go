package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mkTrace(t *testing.T, id string, interval time.Duration, samples []float64) *Trace {
	t.Helper()
	tr, err := New(id, interval, samples)
	if err != nil {
		t.Fatalf("New(%q): %v", id, err)
	}
	return tr
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		tr      Trace
		wantErr bool
	}{
		{
			name: "valid",
			tr:   Trace{AppID: "a", Interval: 5 * time.Minute, Samples: []float64{1, 2}},
		},
		{
			name:    "no samples",
			tr:      Trace{AppID: "a", Interval: 5 * time.Minute},
			wantErr: true,
		},
		{
			name:    "zero interval",
			tr:      Trace{AppID: "a", Samples: []float64{1}},
			wantErr: true,
		},
		{
			name:    "interval does not divide a day",
			tr:      Trace{AppID: "a", Interval: 7 * time.Minute, Samples: []float64{1}},
			wantErr: true,
		},
		{
			name:    "negative demand",
			tr:      Trace{AppID: "a", Interval: time.Hour, Samples: []float64{-1}},
			wantErr: true,
		},
		{
			name:    "NaN demand",
			tr:      Trace{AppID: "a", Interval: time.Hour, Samples: []float64{math.NaN()}},
			wantErr: true,
		},
		{
			name:    "infinite demand",
			tr:      Trace{AppID: "a", Interval: time.Hour, Samples: []float64{math.Inf(1)}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.tr.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCalendarIndexing(t *testing.T) {
	// One-hour interval: 24 slots per day, 168 per week.
	samples := make([]float64, 2*7*24)
	tr := mkTrace(t, "a", time.Hour, samples)

	if got := tr.SlotsPerDay(); got != 24 {
		t.Errorf("SlotsPerDay = %d, want 24", got)
	}
	if got := tr.Days(); got != 14 {
		t.Errorf("Days = %d, want 14", got)
	}
	if got := tr.Weeks(); got != 2 {
		t.Errorf("Weeks = %d, want 2", got)
	}
	// Sample at week 1, day 3, slot 5.
	i := tr.Index(1, 3, 5)
	if got := tr.WeekOf(i); got != 1 {
		t.Errorf("WeekOf(%d) = %d, want 1", i, got)
	}
	if got := tr.DayOf(i); got != 3 {
		t.Errorf("DayOf(%d) = %d, want 3", i, got)
	}
	if got := tr.SlotOf(i); got != 5 {
		t.Errorf("SlotOf(%d) = %d, want 5", i, got)
	}
}

func TestQuickIndexRoundTrip(t *testing.T) {
	samples := make([]float64, 4*7*288)
	tr := mkTrace(t, "a", DefaultInterval, samples)
	f := func(w, d, s uint16) bool {
		week := int(w) % tr.Weeks()
		dow := int(d) % 7
		slot := int(s) % tr.SlotsPerDay()
		i := tr.Index(week, dow, slot)
		return tr.WeekOf(i) == week && tr.DayOf(i) == dow && tr.SlotOf(i) == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeakPercentileMean(t *testing.T) {
	tr := mkTrace(t, "a", time.Hour, []float64{1, 2, 3, 4})
	if got := tr.Peak(); got != 4 {
		t.Errorf("Peak = %v, want 4", got)
	}
	if got := tr.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	p, err := tr.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if p != 2.5 {
		t.Errorf("Percentile(50) = %v, want 2.5", p)
	}
	var empty Trace
	if got := empty.Peak(); got != 0 {
		t.Errorf("empty Peak = %v, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := mkTrace(t, "a", time.Hour, []float64{1, 2})
	cp := tr.Clone()
	cp.Samples[0] = 99
	if tr.Samples[0] != 1 {
		t.Error("Clone shares sample storage with original")
	}
	if cp.AppID != tr.AppID || cp.Interval != tr.Interval {
		t.Error("Clone lost metadata")
	}
}

func TestScaleMapCapNormalized(t *testing.T) {
	tr := mkTrace(t, "a", time.Hour, []float64{1, 2, 4})

	sc := tr.Scale(2)
	want := []float64{2, 4, 8}
	for i, v := range sc.Samples {
		if v != want[i] {
			t.Errorf("Scale sample %d = %v, want %v", i, v, want[i])
		}
	}

	capped := tr.Cap(1.5)
	want = []float64{1, 1.5, 1.5}
	for i, v := range capped.Samples {
		if v != want[i] {
			t.Errorf("Cap sample %d = %v, want %v", i, v, want[i])
		}
	}

	norm := tr.Normalized()
	want = []float64{25, 50, 100}
	for i, v := range norm.Samples {
		if v != want[i] {
			t.Errorf("Normalized sample %d = %v, want %v", i, v, want[i])
		}
	}

	zero := mkTrace(t, "z", time.Hour, []float64{0, 0})
	for _, v := range zero.Normalized().Samples {
		if v != 0 {
			t.Errorf("Normalized zero trace sample = %v, want 0", v)
		}
	}

	// Originals untouched.
	if tr.Samples[2] != 4 {
		t.Error("transformations mutated the original trace")
	}
}

func TestSetValidate(t *testing.T) {
	good := Set{
		mkTrace(t, "a", time.Hour, []float64{1, 2}),
		mkTrace(t, "b", time.Hour, []float64{3, 4}),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}

	tests := []struct {
		name string
		set  Set
	}{
		{name: "empty", set: Set{}},
		{name: "nil member", set: Set{nil}},
		{
			name: "duplicate IDs",
			set: Set{
				mkTrace(t, "a", time.Hour, []float64{1}),
				mkTrace(t, "a", time.Hour, []float64{2}),
			},
		},
		{
			name: "interval mismatch",
			set: Set{
				mkTrace(t, "a", time.Hour, []float64{1}),
				mkTrace(t, "b", 30*time.Minute, []float64{2}),
			},
		},
		{
			name: "length mismatch",
			set: Set{
				mkTrace(t, "a", time.Hour, []float64{1}),
				mkTrace(t, "b", time.Hour, []float64{2, 3}),
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.set.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
}

func TestSetHelpers(t *testing.T) {
	set := Set{
		mkTrace(t, "a", time.Hour, []float64{1, 2}),
		mkTrace(t, "b", time.Hour, []float64{3, 1}),
	}
	if tr := set.ByID("b"); tr == nil || tr.AppID != "b" {
		t.Errorf("ByID(b) = %v", tr)
	}
	if tr := set.ByID("zz"); tr != nil {
		t.Errorf("ByID(zz) = %v, want nil", tr)
	}
	ids := set.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v", ids)
	}
	if got := set.TotalPeak(); got != 5 {
		t.Errorf("TotalPeak = %v, want 5", got)
	}
	agg, err := set.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Samples[0] != 4 || agg.Samples[1] != 3 {
		t.Errorf("Sum samples = %v, want [4 3]", agg.Samples)
	}
	if _, err := (Set{}).Sum(); err == nil {
		t.Error("Sum of empty set should fail")
	}

	cl := set.Clone()
	cl[0].Samples[0] = 77
	if set[0].Samples[0] != 1 {
		t.Error("Set.Clone shares storage")
	}

	sub, err := set.Subset([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0].AppID != "b" {
		t.Errorf("Subset = %v", sub.IDs())
	}
	if _, err := set.Subset([]string{"nope"}); err == nil {
		t.Error("Subset with unknown ID should fail")
	}
}
