package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Fuzz targets for the trace readers: arbitrary input must produce a
// valid set or an error — never a panic and never an invalid Set.

func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	seed := Set{
		{AppID: "a", Interval: 5 * time.Minute, Samples: []float64{1, 2}},
		{AppID: "b", Interval: 5 * time.Minute, Samples: []float64{0, 0.5}},
	}
	if err := WriteCSV(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("interval:5m0s,app\n0,1\n")
	f.Add("interval:xyz,app\n0,1\n")
	f.Add("")
	f.Add("a,b,c\n1,2\n")
	f.Add("interval:5m0s,app\n0,-3\n")

	f.Fuzz(func(t *testing.T, input string) {
		set, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadCSV returned an invalid set: %v", err)
		}
		// A successfully parsed set must round-trip.
		var out bytes.Buffer
		if err := WriteCSV(&out, set); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if len(again) != len(set) {
			t.Fatalf("round trip changed set size: %d != %d", len(again), len(set))
		}
	})
}

func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	seed := Set{{AppID: "a", Interval: 5 * time.Minute, Samples: []float64{1}}}
	if err := WriteJSON(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`[{"appId":"a","interval":"bad","samples":[1]}]`)
	f.Add(`[]`)
	f.Add(`not json`)
	f.Add(`[{"appId":"a","interval":"5m","samples":[-1]}]`)

	f.Fuzz(func(t *testing.T, input string) {
		set, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadJSON returned an invalid set: %v", err)
		}
	})
}
