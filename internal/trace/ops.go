package trace

import (
	"fmt"
	"time"
)

// ResampleMethod selects how samples are combined when resampling to a
// coarser interval.
type ResampleMethod int

const (
	// ResampleMean averages the fine-grained samples in each coarse
	// interval — what a monitoring system reports as utilization.
	ResampleMean ResampleMethod = iota + 1
	// ResampleMax keeps the peak of each coarse interval — conservative
	// for capacity planning.
	ResampleMax
)

// String implements fmt.Stringer.
func (m ResampleMethod) String() string {
	switch m {
	case ResampleMean:
		return "mean"
	case ResampleMax:
		return "max"
	default:
		return fmt.Sprintf("ResampleMethod(%d)", int(m))
	}
}

// Window returns the sub-trace covering the whole days
// [startDay, startDay+days). The result shares no storage with t.
func (t *Trace) Window(startDay, days int) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	slots := t.SlotsPerDay()
	if startDay < 0 || days <= 0 || (startDay+days)*slots > len(t.Samples) {
		return nil, fmt.Errorf("trace: window days [%d,%d) out of range for %d-day trace",
			startDay, startDay+days, t.Days())
	}
	out := &Trace{
		AppID:    t.AppID,
		Interval: t.Interval,
		Samples:  make([]float64, days*slots),
	}
	copy(out.Samples, t.Samples[startDay*slots:(startDay+days)*slots])
	return out, nil
}

// LastWeeks returns the trailing n whole weeks of the trace — the
// "recent data" the paper recommends working with so that capacity
// plans adapt to slow demand change.
func (t *Trace) LastWeeks(n int) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	weeks := t.Weeks()
	if n <= 0 || n > weeks {
		return nil, fmt.Errorf("trace: cannot take last %d weeks of a %d-week trace", n, weeks)
	}
	return t.Window((weeks-n)*7, n*7)
}

// Resample aggregates the trace to a coarser interval. The new interval
// must be a positive multiple of the current one and still divide 24h;
// trailing samples that do not fill a whole coarse interval are dropped.
func (t *Trace) Resample(interval time.Duration, method ResampleMethod) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 || interval%t.Interval != 0 {
		return nil, fmt.Errorf("trace: new interval %v is not a multiple of %v", interval, t.Interval)
	}
	if (24*time.Hour)%interval != 0 {
		return nil, fmt.Errorf("trace: new interval %v does not divide 24h", interval)
	}
	if method != ResampleMean && method != ResampleMax {
		return nil, fmt.Errorf("trace: unknown resample method %v", method)
	}
	group := int(interval / t.Interval)
	n := len(t.Samples) / group
	if n == 0 {
		return nil, fmt.Errorf("trace: %d samples cannot fill one %v interval", len(t.Samples), interval)
	}
	out := &Trace{AppID: t.AppID, Interval: interval, Samples: make([]float64, n)}
	for i := 0; i < n; i++ {
		chunk := t.Samples[i*group : (i+1)*group]
		switch method {
		case ResampleMean:
			sum := 0.0
			for _, v := range chunk {
				sum += v
			}
			out.Samples[i] = sum / float64(group)
		case ResampleMax:
			m := chunk[0]
			for _, v := range chunk[1:] {
				if v > m {
					m = v
				}
			}
			out.Samples[i] = m
		}
	}
	return out, nil
}

// Concat returns a new trace with other's samples appended to t's. Both
// traces must describe the same application at the same interval.
func (t *Trace) Concat(other *Trace) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if other == nil {
		return nil, fmt.Errorf("trace: nil trace to concatenate")
	}
	if err := other.Validate(); err != nil {
		return nil, err
	}
	if t.AppID != other.AppID {
		return nil, fmt.Errorf("trace: cannot concatenate %q with %q", t.AppID, other.AppID)
	}
	if t.Interval != other.Interval {
		return nil, fmt.Errorf("trace: interval mismatch %v vs %v", t.Interval, other.Interval)
	}
	out := &Trace{
		AppID:    t.AppID,
		Interval: t.Interval,
		Samples:  make([]float64, 0, len(t.Samples)+len(other.Samples)),
	}
	out.Samples = append(out.Samples, t.Samples...)
	out.Samples = append(out.Samples, other.Samples...)
	return out, nil
}
