package trace

import (
	"fmt"
	"math"
)

// Demand forecasting. The paper's trace-based method assumes that
// "future demands will be roughly similar" to the past, that most
// demands "change slowly (e.g., over several months)", and that
// significant changes are forecast by business units and communicated
// to the pool operator so their impact can be "reflected in the
// corresponding traces". This file provides both mechanisms:
//
//   - ForecastWeeks projects the slowly-changing demand level forward
//     while preserving the diurnal and weekly structure the placement
//     simulator depends on.
//   - ApplyGrowth scales a trace by a business-supplied factor, the
//     "reflected in the traces" path for step changes.

// ForecastWeeks extrapolates the trace for the given number of future
// weeks. The projection separates shape from level: the shape of a
// future week is the mean observed week (per-slot average across the
// observed weeks, which preserves time-of-day and day-of-week
// structure), and its level follows the least-squares linear trend of
// the weekly mean demand. Projected levels are clamped at zero.
//
// Fitting the trend on weekly means rather than per slot keeps the
// forecast robust: per-slot regressions over a handful of weeks would
// amplify measurement noise and one-off bursts into runaway trends.
//
// The trace must cover at least two whole weeks. The result contains
// only the projected weeks; use Concat to extend the history.
func ForecastWeeks(t *Trace, weeks int) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if weeks <= 0 {
		return nil, fmt.Errorf("trace: forecast weeks %d <= 0", weeks)
	}
	w := t.Weeks()
	if w < 2 {
		return nil, fmt.Errorf("trace: forecasting needs >= 2 whole weeks, have %d", w)
	}
	slotsPerWeek := 7 * t.SlotsPerDay()

	// Weekly mean levels and their least-squares trend.
	levels := make([]float64, w)
	for x := 0; x < w; x++ {
		sum := 0.0
		for pos := 0; pos < slotsPerWeek; pos++ {
			sum += t.Samples[x*slotsPerWeek+pos]
		}
		levels[x] = sum / float64(slotsPerWeek)
	}
	var sumX, sumXX, sumY, sumXY float64
	for x, y := range levels {
		sumX += float64(x)
		sumXX += float64(x) * float64(x)
		sumY += y
		sumXY += float64(x) * y
	}
	n := float64(w)
	denom := n*sumXX - sumX*sumX
	slope := 0.0
	if denom != 0 {
		slope = (n*sumXY - sumX*sumY) / denom
	}
	intercept := (sumY - slope*sumX) / n
	obsMean := sumY / n

	// Mean observed week: the shape template.
	meanWeek := make([]float64, slotsPerWeek)
	for pos := 0; pos < slotsPerWeek; pos++ {
		sum := 0.0
		for x := 0; x < w; x++ {
			sum += t.Samples[x*slotsPerWeek+pos]
		}
		meanWeek[pos] = sum / n
	}

	out := &Trace{
		AppID:    t.AppID,
		Interval: t.Interval,
		Samples:  make([]float64, weeks*slotsPerWeek),
	}
	for k := 0; k < weeks; k++ {
		level := intercept + slope*float64(w+k)
		if level < 0 || math.IsNaN(level) {
			level = 0
		}
		scale := 0.0
		if obsMean > 0 {
			scale = level / obsMean
		}
		for pos := 0; pos < slotsPerWeek; pos++ {
			out.Samples[k*slotsPerWeek+pos] = meanWeek[pos] * scale
		}
	}
	return out, nil
}

// ApplyGrowth returns a copy of the trace scaled by factor — the path
// for business-forecast step changes in demand (for example a planned
// 20% growth becomes factor 1.2). Factors below zero are rejected.
func ApplyGrowth(t *Trace, factor float64) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("trace: bad growth factor %v", factor)
	}
	return t.Scale(factor), nil
}
