package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSanitizeInterpolate(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name    string
		in      []float64
		want    []float64
		repair  int
		longest int
	}{
		{
			name: "clean passthrough",
			in:   []float64{1, 2, 3},
			want: []float64{1, 2, 3},
		},
		{
			name:    "single interior gap",
			in:      []float64{1, nan, 3},
			want:    []float64{1, 2, 3},
			repair:  1,
			longest: 1,
		},
		{
			name:    "run of gaps",
			in:      []float64{0, nan, nan, nan, 4},
			want:    []float64{0, 1, 2, 3, 4},
			repair:  3,
			longest: 3,
		},
		{
			name:    "leading gap copies first valid",
			in:      []float64{nan, nan, 5, 5},
			want:    []float64{5, 5, 5, 5},
			repair:  2,
			longest: 2,
		},
		{
			name:    "trailing gap copies last valid",
			in:      []float64{2, 2, nan},
			want:    []float64{2, 2, 2},
			repair:  1,
			longest: 1,
		},
		{
			name:    "negative and infinite are gaps",
			in:      []float64{1, -5, math.Inf(1), 4},
			want:    []float64{1, 2, 3, 4},
			repair:  2,
			longest: 2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr, res, err := Sanitize("a", time.Hour, tt.in, GapInterpolate)
			if err != nil {
				t.Fatal(err)
			}
			if res.Repaired != tt.repair || res.LongestGap != tt.longest {
				t.Errorf("result = %+v, want repaired=%d longest=%d", res, tt.repair, tt.longest)
			}
			for i, v := range tr.Samples {
				if math.Abs(v-tt.want[i]) > 1e-9 {
					t.Errorf("sample %d = %v, want %v", i, v, tt.want[i])
				}
			}
		})
	}
}

func TestSanitizeZeroPolicy(t *testing.T) {
	tr, res, err := Sanitize("a", time.Hour, []float64{1, math.NaN(), 3}, GapZero)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Samples[1] != 0 {
		t.Errorf("gap = %v, want 0", tr.Samples[1])
	}
	if res.Repaired != 1 {
		t.Errorf("Repaired = %d, want 1", res.Repaired)
	}
}

func TestSanitizeErrors(t *testing.T) {
	if _, _, err := Sanitize("a", time.Hour, nil, GapInterpolate); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Sanitize("a", time.Hour, []float64{math.NaN()}, GapInterpolate); err == nil {
		t.Error("all-invalid input accepted")
	}
	if _, _, err := Sanitize("a", time.Hour, []float64{1}, GapPolicy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, _, err := Sanitize("a", 7*time.Minute, []float64{1}, GapZero); err == nil {
		t.Error("bad interval accepted")
	}
}

func TestGapPolicyString(t *testing.T) {
	if GapInterpolate.String() != "interpolate" || GapZero.String() != "zero" {
		t.Error("unexpected policy strings")
	}
	if got := GapPolicy(7).String(); got != "GapPolicy(7)" {
		t.Errorf("unknown policy String = %q", got)
	}
}

func TestQuickSanitizeAlwaysValid(t *testing.T) {
	f := func(raw []int16, zero bool) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		hasValid := false
		for i, v := range raw {
			switch v % 5 {
			case 0:
				samples[i] = math.NaN()
			case 1:
				samples[i] = -1
			case 2:
				samples[i] = math.Inf(1)
			default:
				samples[i] = float64(v&0xff) / 10
				hasValid = true
			}
		}
		policy := GapInterpolate
		if zero {
			policy = GapZero
		}
		tr, _, err := Sanitize("q", time.Hour, samples, policy)
		if !hasValid {
			return err != nil
		}
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
