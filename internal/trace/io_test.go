package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func roundTripSet(t *testing.T) Set {
	t.Helper()
	return Set{
		mkTrace(t, "app-01", 5*time.Minute, []float64{1.25, 0.5, 2.75}),
		mkTrace(t, "app-02", 5*time.Minute, []float64{0, 3.125, 1}),
	}
}

func assertSetsEqual(t *testing.T, got, want Set) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d traces, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].AppID != want[i].AppID {
			t.Errorf("trace %d AppID = %q, want %q", i, got[i].AppID, want[i].AppID)
		}
		if got[i].Interval != want[i].Interval {
			t.Errorf("trace %d Interval = %v, want %v", i, got[i].Interval, want[i].Interval)
		}
		if len(got[i].Samples) != len(want[i].Samples) {
			t.Fatalf("trace %d has %d samples, want %d", i, len(got[i].Samples), len(want[i].Samples))
		}
		for j := range want[i].Samples {
			if got[i].Samples[j] != want[i].Samples[j] {
				t.Errorf("trace %d sample %d = %v, want %v", i, j, got[i].Samples[j], want[i].Samples[j])
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	set := roundTripSet(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	assertSetsEqual(t, got, set)
}

func TestJSONRoundTrip(t *testing.T) {
	set := roundTripSet(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, set); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	assertSetsEqual(t, got, set)
}

func TestWriteCSVRejectsInvalidSet(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Set{}); err == nil {
		t.Error("WriteCSV(empty) should fail")
	}
	if err := WriteJSON(&buf, Set{}); err == nil {
		t.Error("WriteJSON(empty) should fail")
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "empty input", in: ""},
		{name: "header too short", in: "interval:5m0s\n"},
		{name: "missing interval prefix", in: "5m0s,app\n0,1\n"},
		{name: "bad interval", in: "interval:xyz,app\n0,1\n"},
		{name: "bad row index", in: "interval:5m0s,app\n7,1\n"},
		{name: "non-numeric demand", in: "interval:5m0s,app\n0,abc\n"},
		{name: "negative demand", in: "interval:5m0s,app\n0,-1\n"},
		{name: "no rows at all", in: "interval:5m0s,app\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("ReadCSV should fail")
			}
		})
	}
}

func TestReadJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "not JSON", in: "xx"},
		{name: "bad interval", in: `[{"appId":"a","interval":"??","samples":[1]}]`},
		{name: "no samples", in: `[{"appId":"a","interval":"5m","samples":[]}]`},
		{name: "negative demand", in: `[{"appId":"a","interval":"5m","samples":[-2]}]`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Error("ReadJSON should fail")
			}
		})
	}
}

func TestCSVPreservesFullPrecision(t *testing.T) {
	set := Set{mkTrace(t, "a", 5*time.Minute, []float64{1.0 / 3.0, 1e-17, 123456.789012345})}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range set[0].Samples {
		if got[0].Samples[i] != v {
			t.Errorf("sample %d = %v, want exactly %v", i, got[0].Samples[i], v)
		}
	}
}
