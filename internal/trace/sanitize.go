package trace

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Monitoring data is imperfect: agents restart, collectors drop
// intervals, counters glitch. Sanitize turns a raw sample series with
// gaps (NaN) or garbage (negative, infinite) into a valid demand trace
// plus an account of what was repaired, so four weeks of history with a
// few holes does not block a capacity-management pass.

// GapPolicy selects how invalid samples are repaired.
type GapPolicy int

const (
	// GapInterpolate fills each invalid run linearly between its valid
	// neighbours (flat extension at the trace edges). The conservative
	// default: preserves level and shape.
	GapInterpolate GapPolicy = iota + 1
	// GapZero treats invalid samples as zero demand, appropriate when a
	// missing measurement means "application was down".
	GapZero
)

// String implements fmt.Stringer.
func (p GapPolicy) String() string {
	switch p {
	case GapInterpolate:
		return "interpolate"
	case GapZero:
		return "zero"
	default:
		return fmt.Sprintf("GapPolicy(%d)", int(p))
	}
}

// SanitizeResult reports what Sanitize repaired.
type SanitizeResult struct {
	// Repaired counts the samples that were invalid.
	Repaired int
	// LongestGap is the longest run of consecutive invalid samples.
	LongestGap int
}

// Sanitize builds a valid trace from raw samples, repairing invalid
// entries (NaN, ±Inf, negative) according to policy. It fails when the
// series is empty, when no sample is valid, or when the interval is
// unusable.
func Sanitize(appID string, interval time.Duration, samples []float64, policy GapPolicy) (*Trace, SanitizeResult, error) {
	var res SanitizeResult
	if policy != GapInterpolate && policy != GapZero {
		return nil, res, fmt.Errorf("trace: unknown gap policy %v", policy)
	}
	if len(samples) == 0 {
		return nil, res, errors.New("trace: no samples to sanitize")
	}

	valid := func(v float64) bool {
		return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
	}

	clean := make([]float64, len(samples))
	copy(clean, samples)

	anyValid := false
	gap := 0
	for _, v := range clean {
		if valid(v) {
			anyValid = true
			gap = 0
			continue
		}
		res.Repaired++
		gap++
		if gap > res.LongestGap {
			res.LongestGap = gap
		}
	}
	if !anyValid {
		return nil, SanitizeResult{}, fmt.Errorf("trace: app %q has no valid samples", appID)
	}

	switch policy {
	case GapZero:
		for i, v := range clean {
			if !valid(v) {
				clean[i] = 0
			}
		}
	case GapInterpolate:
		interpolateGaps(clean, valid)
	}

	tr, err := New(appID, interval, clean)
	if err != nil {
		return nil, SanitizeResult{}, err
	}
	return tr, res, nil
}

// interpolateGaps fills invalid runs linearly between their valid
// neighbours; runs touching an edge copy the nearest valid value.
func interpolateGaps(samples []float64, valid func(float64) bool) {
	n := len(samples)
	i := 0
	for i < n {
		if valid(samples[i]) {
			i++
			continue
		}
		start := i
		for i < n && !valid(samples[i]) {
			i++
		}
		// Invalid run is [start, i).
		switch {
		case start == 0 && i == n:
			// Caller guarantees at least one valid sample, so this
			// cannot happen; keep the loop robust anyway.
			for j := start; j < i; j++ {
				samples[j] = 0
			}
		case start == 0:
			for j := start; j < i; j++ {
				samples[j] = samples[i]
			}
		case i == n:
			for j := start; j < i; j++ {
				samples[j] = samples[start-1]
			}
		default:
			lo := samples[start-1]
			hi := samples[i]
			span := float64(i - start + 1)
			for j := start; j < i; j++ {
				frac := float64(j-start+1) / span
				samples[j] = lo + (hi-lo)*frac
			}
		}
	}
}
