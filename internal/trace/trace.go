// Package trace implements the workload demand traces at the heart of
// R-Opus's trace-based capacity management (paper section II).
//
// Each application workload is characterized by several weeks of demand
// observations, one per measurement interval (five minutes in the paper,
// giving T = 288 slots per day). The placement simulator's resource
// access probability θ is defined over the (week, day-of-week, slot)
// structure of these traces, so the package models that calendar
// structure explicitly.
//
// Demand values are expressed in CPU units: a demand of 2.0 means the
// application consumed the equivalent of two fully-busy CPUs during the
// interval.
package trace

import (
	"errors"
	"fmt"
	"math"
	"time"

	"ropus/internal/stats"
)

// DefaultInterval is the paper's measurement interval (5 minutes,
// T = 288 slots per day).
const DefaultInterval = 5 * time.Minute

const day = 24 * time.Hour

// Common validation errors.
var (
	ErrNoSamples      = errors.New("trace: no samples")
	ErrBadInterval    = errors.New("trace: interval must be positive and divide 24h")
	ErrNegativeDemand = errors.New("trace: negative demand sample")
	ErrBadSample      = errors.New("trace: NaN or infinite demand sample")
)

// Trace is a demand time series for one application workload.
type Trace struct {
	// AppID identifies the application workload this trace belongs to.
	AppID string
	// Interval is the measurement interval between samples. It must be
	// positive and divide 24 hours evenly so that samples align to
	// day-of-week slots.
	Interval time.Duration
	// Samples holds one CPU demand observation per interval, oldest
	// first. Sample i covers [i*Interval, (i+1)*Interval).
	Samples []float64
}

// New returns a Trace after validating it. Callers that construct a
// Trace literal directly should call Validate before use.
func New(appID string, interval time.Duration, samples []float64) (*Trace, error) {
	tr := &Trace{AppID: appID, Interval: interval, Samples: samples}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Validate checks structural invariants: a positive interval that
// divides 24h, at least one sample, and finite non-negative demands.
func (t *Trace) Validate() error {
	if t.Interval <= 0 || day%t.Interval != 0 {
		return fmt.Errorf("%w: %v", ErrBadInterval, t.Interval)
	}
	if len(t.Samples) == 0 {
		return fmt.Errorf("%w (app %q)", ErrNoSamples, t.AppID)
	}
	for i, v := range t.Samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: sample %d of app %q", ErrBadSample, i, t.AppID)
		}
		if v < 0 {
			return fmt.Errorf("%w: sample %d of app %q is %v", ErrNegativeDemand, i, t.AppID, v)
		}
	}
	return nil
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// SlotsPerDay returns T, the number of measurement slots per day.
func (t *Trace) SlotsPerDay() int { return int(day / t.Interval) }

// Days returns the number of complete days covered by the trace.
func (t *Trace) Days() int { return len(t.Samples) / t.SlotsPerDay() }

// Weeks returns the number of complete weeks covered by the trace.
func (t *Trace) Weeks() int { return t.Days() / 7 }

// SlotOf returns the time-of-day slot index (0..T-1) of sample i.
func (t *Trace) SlotOf(i int) int { return i % t.SlotsPerDay() }

// DayOf returns the day-of-week index (0..6) of sample i, counting from
// the first sample.
func (t *Trace) DayOf(i int) int { return i / t.SlotsPerDay() % 7 }

// WeekOf returns the week index of sample i.
func (t *Trace) WeekOf(i int) int { return i / (7 * t.SlotsPerDay()) }

// Index returns the sample index for (week, dayOfWeek, slot).
func (t *Trace) Index(week, dayOfWeek, slot int) int {
	return (week*7+dayOfWeek)*t.SlotsPerDay() + slot
}

// Peak returns the maximum demand D_max in the trace.
func (t *Trace) Peak() float64 {
	m, err := stats.Max(t.Samples)
	if err != nil {
		return 0
	}
	return m
}

// Percentile returns the p-th percentile demand D_p% of the trace.
func (t *Trace) Percentile(p float64) (float64, error) {
	return stats.Percentile(t.Samples, p)
}

// Mean returns the mean demand of the trace.
func (t *Trace) Mean() float64 {
	m, err := stats.Mean(t.Samples)
	if err != nil {
		return 0
	}
	return m
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	samples := make([]float64, len(t.Samples))
	copy(samples, t.Samples)
	return &Trace{AppID: t.AppID, Interval: t.Interval, Samples: samples}
}

// Scale returns a new trace with every sample multiplied by factor.
func (t *Trace) Scale(factor float64) *Trace {
	out := t.Clone()
	for i := range out.Samples {
		out.Samples[i] *= factor
	}
	return out
}

// Map returns a new trace with fn applied to every sample.
func (t *Trace) Map(fn func(float64) float64) *Trace {
	out := t.Clone()
	for i := range out.Samples {
		out.Samples[i] = fn(out.Samples[i])
	}
	return out
}

// Cap returns a new trace with every sample capped at limit, i.e.
// min(sample, limit). The portfolio translation uses this to apply the
// new maximum demand D_new_max.
func (t *Trace) Cap(limit float64) *Trace {
	return t.Map(func(v float64) float64 { return math.Min(v, limit) })
}

// Normalized returns a new trace whose samples are percentages of the
// peak demand (0..100), matching the presentation of the paper's
// Figure 6. A zero trace normalizes to all zeros.
func (t *Trace) Normalized() *Trace {
	peak := t.Peak()
	if peak == 0 {
		return t.Clone()
	}
	return t.Scale(100 / peak)
}

// Set is an ordered collection of traces for distinct applications.
type Set []*Trace

// Validate checks every member trace, that all intervals and lengths
// agree (the placement simulator replays them in lockstep), and that
// application IDs are unique.
func (s Set) Validate() error {
	if len(s) == 0 {
		return errors.New("trace: empty trace set")
	}
	seen := make(map[string]bool, len(s))
	for i, tr := range s {
		if tr == nil {
			return fmt.Errorf("trace: nil trace at index %d", i)
		}
		if err := tr.Validate(); err != nil {
			return err
		}
		if seen[tr.AppID] {
			return fmt.Errorf("trace: duplicate app ID %q", tr.AppID)
		}
		seen[tr.AppID] = true
		if tr.Interval != s[0].Interval {
			return fmt.Errorf("trace: app %q interval %v differs from %v",
				tr.AppID, tr.Interval, s[0].Interval)
		}
		if len(tr.Samples) != len(s[0].Samples) {
			return fmt.Errorf("trace: app %q has %d samples, want %d",
				tr.AppID, len(tr.Samples), len(s[0].Samples))
		}
	}
	return nil
}

// ByID returns the trace with the given application ID, or nil.
func (s Set) ByID(appID string) *Trace {
	for _, tr := range s {
		if tr.AppID == appID {
			return tr
		}
	}
	return nil
}

// IDs returns the application IDs in set order.
func (s Set) IDs() []string {
	ids := make([]string, len(s))
	for i, tr := range s {
		ids[i] = tr.AppID
	}
	return ids
}

// TotalPeak returns the sum of per-application peak demands. The pool is
// overbooked when this exceeds pool capacity (paper section I).
func (s Set) TotalPeak() float64 {
	sum := 0.0
	for _, tr := range s {
		sum += tr.Peak()
	}
	return sum
}

// Sum returns the aggregate demand trace (per-slot sum across the set).
// The set must be non-empty and aligned; call Validate first.
func (s Set) Sum() (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	agg := &Trace{
		AppID:    "aggregate",
		Interval: s[0].Interval,
		Samples:  make([]float64, len(s[0].Samples)),
	}
	for _, tr := range s {
		for i, v := range tr.Samples {
			agg.Samples[i] += v
		}
	}
	return agg, nil
}

// Clone deep-copies the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for i, tr := range s {
		out[i] = tr.Clone()
	}
	return out
}

// Subset returns the traces whose AppID is in ids, in the order of ids.
// It fails if any ID is missing.
func (s Set) Subset(ids []string) (Set, error) {
	out := make(Set, 0, len(ids))
	for _, id := range ids {
		tr := s.ByID(id)
		if tr == nil {
			return nil, fmt.Errorf("trace: app %q not in set", id)
		}
		out = append(out, tr)
	}
	return out, nil
}
