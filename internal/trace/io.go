package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV layout: a header row of application IDs, then one row per
// measurement interval with one demand column per application. The
// interval is carried in a leading comment-like header cell of the form
// "#interval=5m0s" in the first column of the header row is NOT used;
// instead the interval is the first header cell "interval:<duration>".
//
// Example:
//
//	interval:5m0s,app-01,app-02
//	0,1.25,0.50
//	1,1.30,0.55
//
// The first column holds the sample index, which makes the files easy to
// plot and diff; it is validated on read.

// WriteCSV writes the set to w in the CSV layout described above.
func WriteCSV(w io.Writer, s Set) error {
	if err := s.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append([]string{"interval:" + s[0].Interval.String()}, s.IDs()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(s)+1)
	for i := 0; i < s[0].Len(); i++ {
		row[0] = strconv.Itoa(i)
		for j, tr := range s {
			row[j+1] = strconv.FormatFloat(tr.Samples[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a set previously written by WriteCSV.
func ReadCSV(r io.Reader) (Set, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("trace: header needs interval and at least one app, got %d cells", len(header))
	}
	const prefix = "interval:"
	if len(header[0]) <= len(prefix) || header[0][:len(prefix)] != prefix {
		return nil, fmt.Errorf("trace: header cell %q lacks %q prefix", header[0], prefix)
	}
	interval, err := time.ParseDuration(header[0][len(prefix):])
	if err != nil {
		return nil, fmt.Errorf("trace: parse interval: %w", err)
	}
	set := make(Set, len(header)-1)
	for i, id := range header[1:] {
		set[i] = &Trace{AppID: id, Interval: interval}
	}
	for rowIdx := 0; ; rowIdx++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read row %d: %w", rowIdx, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("trace: row %d has %d cells, want %d", rowIdx, len(row), len(header))
		}
		idx, err := strconv.Atoi(row[0])
		if err != nil || idx != rowIdx {
			return nil, fmt.Errorf("trace: row %d has index %q, want %d", rowIdx, row[0], rowIdx)
		}
		for j, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d app %q: %w", rowIdx, set[j].AppID, err)
			}
			set[j].Samples = append(set[j].Samples, v)
		}
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// jsonTrace is the serialized form of a Trace. The interval is encoded
// as a duration string since encoding/json has no native duration
// support (per the style guide, the unit is explicit in the field name).
type jsonTrace struct {
	AppID    string    `json:"appId"`
	Interval string    `json:"interval"`
	Samples  []float64 `json:"samples"`
}

// WriteJSON writes the set to w as a JSON array of trace objects.
func WriteJSON(w io.Writer, s Set) error {
	if err := s.Validate(); err != nil {
		return err
	}
	out := make([]jsonTrace, len(s))
	for i, tr := range s {
		out[i] = jsonTrace{AppID: tr.AppID, Interval: tr.Interval.String(), Samples: tr.Samples}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON reads a set previously written by WriteJSON.
func ReadJSON(r io.Reader) (Set, error) {
	var raw []jsonTrace
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("trace: decode JSON: %w", err)
	}
	set := make(Set, len(raw))
	for i, jt := range raw {
		interval, err := time.ParseDuration(jt.Interval)
		if err != nil {
			return nil, fmt.Errorf("trace: app %q interval: %w", jt.AppID, err)
		}
		set[i] = &Trace{AppID: jt.AppID, Interval: interval, Samples: jt.Samples}
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}
