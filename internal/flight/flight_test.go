package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"ropus/internal/telemetry"
)

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record("event", fmt.Sprintf("e%d", i), "", nil)
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", r.Len())
	}
	events := r.Snapshot("")
	if len(events) != 3 {
		t.Fatalf("snapshot %d events, want 3", len(events))
	}
	// Oldest-first, and the two oldest were evicted.
	for i, want := range []string{"e2", "e3", "e4"} {
		if events[i].Name != want {
			t.Errorf("event %d = %q, want %q", i, events[i].Name, want)
		}
	}
	// Sequence numbers keep counting across evictions.
	if events[0].Seq != 3 || events[2].Seq != 5 {
		t.Errorf("seqs %d..%d, want 3..5", events[0].Seq, events[2].Seq)
	}
}

func TestSnapshotFiltersByTrace(t *testing.T) {
	r := NewRecorder(0)
	r.Record("event", "a", "t1", nil)
	r.Record("event", "b", "t2", nil)
	r.Record("event", "c", "t1", nil)
	if got := r.Snapshot("t1"); len(got) != 2 {
		t.Errorf("trace filter returned %d events, want 2", len(got))
	}
	if got := r.Snapshot(""); len(got) != 3 {
		t.Errorf("unfiltered snapshot returned %d events, want 3", len(got))
	}
	if got := r.Snapshot("t9"); len(got) != 0 {
		t.Errorf("unknown trace returned %d events", len(got))
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record("event", "x", "", nil)
	if r.Len() != 0 || r.Snapshot("") != nil {
		t.Error("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, "why", ""); err != nil {
		t.Fatal(err)
	}
	var dump Dump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("nil recorder dump not JSON: %v", err)
	}
	if dump.Reason != "why" || dump.Events == nil || len(dump.Events) != 0 {
		t.Errorf("nil recorder dump: %+v", dump)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	r.Record("event", "boom", "t1", map[string]any{"op": "step"})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, "panic", "t1"); err != nil {
		t.Fatal(err)
	}
	var dump Dump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Reason != "panic" || dump.TraceID != "t1" || len(dump.Events) != 1 {
		t.Errorf("round trip: %+v", dump)
	}
	if dump.Events[0].Attrs["op"] != "step" {
		t.Errorf("attrs lost: %v", dump.Events[0].Attrs)
	}
}

func TestSpanSink(t *testing.T) {
	r := NewRecorder(0)
	tr := telemetry.NewTracer()
	tr.OnEnd(SpanSink(r))
	sp := tr.StartSpan("outer", telemetry.Int("n", 2))
	child := sp.Child("inner")
	child.End()
	sp.End()
	events := r.Snapshot("")
	if len(events) != 2 {
		t.Fatalf("recorded %d span events, want 2", len(events))
	}
	inner, outer := events[0], events[1]
	if inner.Kind != "span" || inner.Name != "inner" || outer.Name != "outer" {
		t.Errorf("span events: %+v", events)
	}
	if _, ok := inner.Attrs["parent_id"]; !ok {
		t.Error("child span lost its parent_id")
	}
	if outer.Attrs["n"] != float64(2) && outer.Attrs["n"] != 2 {
		// Attrs survive json round trips as float64; in-memory they stay int.
		if v, ok := outer.Attrs["n"].(int); !ok || v != 2 {
			t.Errorf("span attr n = %v", outer.Attrs["n"])
		}
	}
	// A nil recorder sink is inert.
	SpanSink(nil)(telemetry.SpanRecord{Name: "x"})
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("event", "e", fmt.Sprintf("t%d", g), nil)
				r.Snapshot("")
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("ring holds %d, want 64", r.Len())
	}
}
