// Package flight is a fixed-size in-memory flight recorder: a ring
// buffer of the most recent observability events (completed spans, log
// records, lifecycle markers), kept cheap enough to run always-on and
// dumped only when something goes wrong — a panic, a failed job, or an
// operator hitting GET /debug/flight. The point is post-hoc diagnosis:
// when a sweep misbehaves, the last N events that led up to it are
// already in memory and do not require a re-run to capture.
//
// A nil *Recorder is a valid no-op, mirroring the telemetry package's
// nil-safe handle convention, so call sites record unconditionally.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one recorded moment. Seq is a per-recorder monotone sequence
// number: tests and post-hoc analysis order by it, never by Time (which
// exists for humans reading a dump).
type Event struct {
	Seq     int64          `json:"seq"`
	Time    time.Time      `json:"time"`
	TraceID string         `json:"trace_id,omitempty"`
	Kind    string         `json:"kind"` // "span", "log", "event"
	Name    string         `json:"name"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity: enough for the tail of a large sweep, small
// enough (~a few hundred KB) to forget about.
const DefaultCapacity = 4096

// Recorder is a concurrency-safe ring buffer of Events. Construct with
// NewRecorder; a nil Recorder discards everything.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event // ring storage, len == capacity
	next int     // index of the next write
	n    int     // number of live events, <= len(buf)
	seq  int64
}

// NewRecorder returns a recorder retaining the last capacity events
// (DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest once full. Seq and Time
// are assigned by the recorder. Attrs is retained as-is; callers must
// not mutate it afterwards.
func (r *Recorder) Record(kind, name, traceID string, attrs map[string]any) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = Event{
		Seq:     r.seq,
		Time:    now,
		TraceID: traceID,
		Kind:    kind,
		Name:    name,
		Attrs:   attrs,
	}
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events oldest-first. A non-empty
// traceID keeps only events attributed to that trace.
func (r *Recorder) Snapshot(traceID string) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		ev := r.buf[(start+i)%len(r.buf)]
		if traceID != "" && ev.TraceID != traceID {
			continue
		}
		out = append(out, ev)
	}
	r.mu.Unlock()
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dump is the JSON shape of a flight-recorder dump (the /debug/flight
// response body and the on-disk file written for failed jobs).
type Dump struct {
	// Reason says why the dump was taken: "panic", "job_failed",
	// "debug" (operator request).
	Reason string `json:"reason"`
	// TraceID is the filter applied ("" = everything retained).
	TraceID string  `json:"trace_id,omitempty"`
	Events  []Event `json:"events"`
}

// WriteJSON writes a Dump of the current snapshot (filtered by traceID
// when non-empty) to w. A nil recorder writes an empty dump rather than
// failing: a dump site should never error because recording was off.
func (r *Recorder) WriteJSON(w io.Writer, reason, traceID string) error {
	d := Dump{Reason: reason, TraceID: traceID, Events: r.Snapshot(traceID)}
	if d.Events == nil {
		d.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("flight: dump: %w", err)
	}
	return nil
}
