package flight

import "ropus/internal/telemetry"

// SpanSink returns a telemetry.Tracer OnEnd callback that records every
// completed span into r as a "span" event carrying the span's trace ID,
// hierarchy and duration — the bridge that makes the flight recorder
// see the same spans the Chrome trace export does.
func SpanSink(r *Recorder) func(telemetry.SpanRecord) {
	return func(rec telemetry.SpanRecord) {
		if r == nil {
			return
		}
		attrs := map[string]any{
			"span_id":     rec.ID,
			"duration_ms": float64(rec.Duration.Nanoseconds()) / 1e6,
		}
		if rec.ParentID != 0 {
			attrs["parent_id"] = rec.ParentID
		}
		for _, a := range rec.Attrs {
			attrs[a.Key] = a.Value
		}
		r.Record("span", rec.Name, rec.TraceID, attrs)
	}
}
