// Package stress is the stand-in for the paper's stress-testing exercise
// (section III, reference [10]): the process that finds the acceptable
// burst-factor range for an application by submitting a representative
// workload in a controlled environment and varying the burst factor.
//
// The real exercise needs a live application; this substrate models the
// application as an open queueing system whose mean response time grows
// with the utilization of its allocation,
//
//	R(U) = S / (1 - U^Z)
//
// where S is the mean service time and Z the number of CPUs serving the
// allocation — the same 1/(1-U^Z) shape the paper uses to motivate its
// placement score. DeriveRange then runs the search the paper describes:
// find the burst factor giving responsiveness "good but not better than
// necessary" (Ulow) and the one giving barely adequate responsiveness
// (Uhigh).
package stress

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Application models the system under stress test.
type Application struct {
	// ServiceTime is the mean per-request service demand S.
	ServiceTime time.Duration
	// CPUs is Z, the number of CPUs backing the allocation.
	CPUs int
}

// Validate checks the model parameters.
func (a Application) Validate() error {
	if a.ServiceTime <= 0 {
		return fmt.Errorf("stress: ServiceTime %v <= 0", a.ServiceTime)
	}
	if a.CPUs <= 0 {
		return fmt.Errorf("stress: CPUs %d <= 0", a.CPUs)
	}
	return nil
}

// ResponseTime returns the modelled mean response time at utilization of
// allocation u in [0, 1). It is +Inf at u >= 1.
func (a Application) ResponseTime(u float64) time.Duration {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		return time.Duration(math.MaxInt64)
	}
	denom := 1 - math.Pow(u, float64(a.CPUs))
	return time.Duration(float64(a.ServiceTime) / denom)
}

// Targets are the responsiveness goals of the stress test.
type Targets struct {
	// Ideal is the response time users consider good; better is wasted
	// capacity.
	Ideal time.Duration
	// Acceptable is the worst response time users tolerate.
	Acceptable time.Duration
}

// Validate checks the targets.
func (t Targets) Validate() error {
	if t.Ideal <= 0 || t.Acceptable <= 0 {
		return errors.New("stress: targets must be positive")
	}
	if t.Acceptable < t.Ideal {
		return fmt.Errorf("stress: Acceptable %v < Ideal %v", t.Acceptable, t.Ideal)
	}
	return nil
}

// Range is the derived utilization-of-allocation operating range; the
// corresponding burst-factor range is (1/ULow, 1/UHigh).
type Range struct {
	ULow  float64
	UHigh float64
}

// DeriveRange runs the stress-test search: bisection over utilization of
// allocation against the application's measured response time, once for
// each target. It fails when even an idle system misses a target or the
// derived range collapses against 1.
func DeriveRange(app Application, targets Targets) (Range, error) {
	if err := app.Validate(); err != nil {
		return Range{}, err
	}
	if err := targets.Validate(); err != nil {
		return Range{}, err
	}
	if app.ResponseTime(0) > targets.Ideal {
		return Range{}, fmt.Errorf("stress: service time %v alone misses the ideal target %v",
			app.ServiceTime, targets.Ideal)
	}
	uLow, err := searchUtilization(app, targets.Ideal)
	if err != nil {
		return Range{}, err
	}
	uHigh, err := searchUtilization(app, targets.Acceptable)
	if err != nil {
		return Range{}, err
	}
	if uHigh >= 1 || uLow <= 0 {
		return Range{}, fmt.Errorf("stress: degenerate range (%v, %v)", uLow, uHigh)
	}
	return Range{ULow: uLow, UHigh: uHigh}, nil
}

// searchUtilization finds the largest utilization whose response time
// still meets the target, by bisection on [0, 1). Response time is
// strictly increasing in utilization, so the search is exact to the
// tolerance.
func searchUtilization(app Application, target time.Duration) (float64, error) {
	const tol = 1e-6
	lo, hi := 0.0, 1-1e-9
	if app.ResponseTime(lo) > target {
		return 0, fmt.Errorf("stress: target %v unreachable", target)
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if app.ResponseTime(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
