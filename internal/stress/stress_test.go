package stress

import (
	"testing"
	"testing/quick"
	"time"
)

func app() Application {
	return Application{ServiceTime: 100 * time.Millisecond, CPUs: 1}
}

func TestApplicationValidate(t *testing.T) {
	if err := app().Validate(); err != nil {
		t.Errorf("valid app rejected: %v", err)
	}
	if err := (Application{ServiceTime: 0, CPUs: 1}).Validate(); err == nil {
		t.Error("zero service time accepted")
	}
	if err := (Application{ServiceTime: time.Second, CPUs: 0}).Validate(); err == nil {
		t.Error("zero CPUs accepted")
	}
}

func TestResponseTime(t *testing.T) {
	a := app()
	if got := a.ResponseTime(0); got != 100*time.Millisecond {
		t.Errorf("R(0) = %v, want service time", got)
	}
	if got := a.ResponseTime(0.5); got != 200*time.Millisecond {
		t.Errorf("R(0.5) = %v, want 200ms for M/M/1", got)
	}
	if got := a.ResponseTime(1); got < time.Hour {
		t.Errorf("R(1) = %v, want effectively infinite", got)
	}
	if got := a.ResponseTime(-0.5); got != a.ResponseTime(0) {
		t.Errorf("negative utilization should clamp to 0, got %v", got)
	}
	// A multi-CPU allocation sustains higher utilization at the same
	// response time (the paper's rationale for the Z term in f(U)).
	multi := Application{ServiceTime: 100 * time.Millisecond, CPUs: 8}
	if multi.ResponseTime(0.8) >= a.ResponseTime(0.8) {
		t.Error("more CPUs should improve response time at equal utilization")
	}
}

func TestTargetsValidate(t *testing.T) {
	good := Targets{Ideal: 200 * time.Millisecond, Acceptable: 300 * time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid targets rejected: %v", err)
	}
	if err := (Targets{Ideal: 0, Acceptable: time.Second}).Validate(); err == nil {
		t.Error("zero ideal accepted")
	}
	if err := (Targets{Ideal: time.Second, Acceptable: time.Millisecond}).Validate(); err == nil {
		t.Error("acceptable below ideal accepted")
	}
}

func TestDeriveRangeMatchesClosedForm(t *testing.T) {
	// For M/M/1 (Z=1): R = S/(1-U)  =>  U = 1 - S/R.
	a := app()
	targets := Targets{Ideal: 200 * time.Millisecond, Acceptable: 300 * time.Millisecond}
	r, err := DeriveRange(a, targets)
	if err != nil {
		t.Fatal(err)
	}
	wantLow := 1 - 100.0/200.0  // 0.5
	wantHigh := 1 - 100.0/300.0 // 0.666...
	if diff := r.ULow - wantLow; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("ULow = %v, want %v", r.ULow, wantLow)
	}
	if diff := r.UHigh - wantHigh; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("UHigh = %v, want %v", r.UHigh, wantHigh)
	}
	if r.ULow > r.UHigh {
		t.Error("ULow should not exceed UHigh")
	}
}

func TestDeriveRangeCaseStudyShape(t *testing.T) {
	// The paper's case-study range (0.5, 0.66) corresponds to targets
	// of 2x and 3x the service time on a single CPU.
	r, err := DeriveRange(app(), Targets{
		Ideal:      200 * time.Millisecond,
		Acceptable: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ULow < 0.49 || r.ULow > 0.51 || r.UHigh < 0.65 || r.UHigh > 0.68 {
		t.Errorf("derived range (%v,%v), want ~(0.5,0.66)", r.ULow, r.UHigh)
	}
}

func TestDeriveRangeErrors(t *testing.T) {
	if _, err := DeriveRange(Application{}, Targets{Ideal: time.Second, Acceptable: time.Second}); err == nil {
		t.Error("invalid app should fail")
	}
	if _, err := DeriveRange(app(), Targets{}); err == nil {
		t.Error("invalid targets should fail")
	}
	// Ideal faster than the bare service time is unreachable.
	if _, err := DeriveRange(app(), Targets{Ideal: 50 * time.Millisecond, Acceptable: time.Second}); err == nil {
		t.Error("unreachable ideal should fail")
	}
}

func TestQuickDerivedRangeOrdered(t *testing.T) {
	f := func(sRaw, idealRaw, gapRaw uint8, cpus uint8) bool {
		s := time.Duration(1+int(sRaw)) * time.Millisecond
		ideal := s + time.Duration(1+int(idealRaw))*time.Millisecond
		acceptable := ideal + time.Duration(int(gapRaw))*time.Millisecond
		a := Application{ServiceTime: s, CPUs: 1 + int(cpus%16)}
		r, err := DeriveRange(a, Targets{Ideal: ideal, Acceptable: acceptable})
		if err != nil {
			return true // infeasible combinations are fine, they error
		}
		return r.ULow > 0 && r.ULow <= r.UHigh+1e-6 && r.UHigh < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
