// Package qos defines the two independent quality-of-service vocabularies
// of R-Opus (paper sections III and IV):
//
//   - Application QoS requirements: an acceptable range [Ulow, Uhigh] for
//     the application's utilization of allocation, an Mdegr percentage of
//     measurements that may run degraded (but never beyond Udegr), and a
//     limit Tdegr on how long degradation may persist contiguously.
//     Requirements come in pairs, one for normal operation and one for
//     operation during a server failure.
//
//   - Resource-pool QoS commitments: the pool operator's promise for the
//     two classes of service. CoS1 is guaranteed; CoS2 offers a resource
//     access probability θ together with a deadline s within which
//     demands not satisfied on request must be satisfied.
//
// The portfolio translation (package portfolio) consumes both to decide
// how each application's demands are split across the two classes.
package qos

import (
	"errors"
	"fmt"
	"time"
)

// ClassOfService identifies one of the pool's two classes of service.
type ClassOfService int

const (
	// CoS1 is the guaranteed class: the placement service ensures the
	// sum of per-application peak CoS1 allocations never exceeds the
	// capacity of a resource.
	CoS1 ClassOfService = iota + 1
	// CoS2 is the statistically-multiplexed class, offered with a
	// resource access probability θ.
	CoS2
)

// String implements fmt.Stringer.
func (c ClassOfService) String() string {
	switch c {
	case CoS1:
		return "CoS1"
	case CoS2:
		return "CoS2"
	default:
		return fmt.Sprintf("ClassOfService(%d)", int(c))
	}
}

// Validation errors for AppQoS and PoolCommitment.
var (
	ErrURange      = errors.New("qos: need 0 < Ulow <= Uhigh < 1")
	ErrUDegr       = errors.New("qos: need Uhigh <= Udegr < 1")
	ErrMPercent    = errors.New("qos: need 0 < MPercent <= 100")
	ErrTDegr       = errors.New("qos: TDegr must be non-negative")
	ErrTheta       = errors.New("qos: need 0 < Theta <= 1")
	ErrDeadline    = errors.New("qos: deadline must be non-negative")
	ErrEpochBudget = errors.New("qos: MaxDegradedPerDay must be non-negative")
)

// AppQoS is an application owner's QoS requirement for one mode of
// operation (normal or failure).
//
// The acceptable range is expressed on the utilization of allocation
// U_alloc = demand / allocation: Ulow corresponds to the ideal burst
// factor 1/Ulow, Uhigh to the largest burst factor users still accept.
type AppQoS struct {
	// ULow is the utilization of allocation giving ideal application
	// performance; 1/ULow is the burst factor used to size allocations.
	ULow float64
	// UHigh is the threshold beyond which performance is undesirable.
	UHigh float64
	// UDegr bounds utilization of allocation during degraded operation.
	// It must be strictly below 1 so demands are still satisfied within
	// their measurement interval.
	UDegr float64
	// MPercent is the minimum percentage of measurements whose
	// utilization of allocation must lie within [ULow, UHigh]. The
	// remaining Mdegr = 100 - MPercent percent may degrade up to UDegr.
	MPercent float64
	// TDegr is the maximum contiguous time degradation may persist.
	// Zero means no contiguous-time limit.
	TDegr time.Duration
	// MaxDegradedPerDay additionally bounds the number of degraded
	// measurement epochs within any calendar day; zero means no per-day
	// budget. The paper (section III, footnote 2) calls this out as a
	// useful enhancement to the Mdegr/Tdegr pair.
	MaxDegradedPerDay int
}

// Validate checks the constraints from section III of the paper.
func (q AppQoS) Validate() error {
	if !(q.ULow > 0 && q.ULow <= q.UHigh && q.UHigh < 1) {
		return fmt.Errorf("%w: Ulow=%v Uhigh=%v", ErrURange, q.ULow, q.UHigh)
	}
	if !(q.UDegr >= q.UHigh && q.UDegr < 1) {
		return fmt.Errorf("%w: Uhigh=%v Udegr=%v", ErrUDegr, q.UHigh, q.UDegr)
	}
	if !(q.MPercent > 0 && q.MPercent <= 100) {
		return fmt.Errorf("%w: MPercent=%v", ErrMPercent, q.MPercent)
	}
	if q.TDegr < 0 {
		return fmt.Errorf("%w: TDegr=%v", ErrTDegr, q.TDegr)
	}
	if q.MaxDegradedPerDay < 0 {
		return fmt.Errorf("%w: MaxDegradedPerDay=%d", ErrEpochBudget, q.MaxDegradedPerDay)
	}
	return nil
}

// String implements fmt.Stringer with the paper's vocabulary.
func (q AppQoS) String() string {
	s := fmt.Sprintf("U in (%.2f, %.2f], Mdegr=%.0f%% up to Udegr=%.2f",
		q.ULow, q.UHigh, q.MDegrPercent(), q.UDegr)
	if q.TDegr > 0 {
		s += fmt.Sprintf(", Tdegr=%s", q.TDegr)
	}
	if q.MaxDegradedPerDay > 0 {
		s += fmt.Sprintf(", <=%d degraded epochs/day", q.MaxDegradedPerDay)
	}
	return s
}

// MDegrPercent returns Mdegr = 100 - MPercent, the percentage of
// measurements allowed to run degraded.
func (q AppQoS) MDegrPercent() float64 { return 100 - q.MPercent }

// BurstFactorRange returns the burst-factor range (ideal, minimum
// acceptable) corresponding to (1/ULow, 1/UHigh). The workload manager
// multiplies measured demand by a burst factor in this range to obtain
// the next allocation.
func (q AppQoS) BurstFactorRange() (ideal, minimum float64) {
	return 1 / q.ULow, 1 / q.UHigh
}

// TDegrSlots returns R, the number of whole measurement slots covered by
// TDegr at the given interval, and whether a contiguous limit applies.
// A run of more than R consecutive degraded observations violates the
// requirement.
func (q AppQoS) TDegrSlots(interval time.Duration) (r int, limited bool) {
	if q.TDegr <= 0 || interval <= 0 {
		return 0, false
	}
	return int(q.TDegr / interval), true
}

// Requirement pairs the application QoS for normal operation with the
// (typically weaker) QoS accepted while a failed server is being
// repaired (paper section III).
type Requirement struct {
	Normal  AppQoS
	Failure AppQoS
}

// Validate checks both modes.
func (r Requirement) Validate() error {
	if err := r.Normal.Validate(); err != nil {
		return fmt.Errorf("normal mode: %w", err)
	}
	if err := r.Failure.Validate(); err != nil {
		return fmt.Errorf("failure mode: %w", err)
	}
	return nil
}

// PoolCommitment is the resource pool operator's resource access QoS
// commitment for CoS2 (paper section IV). CoS1 needs no parameters: it
// is guaranteed by construction.
type PoolCommitment struct {
	// Theta is the resource access probability θ: the probability that
	// a unit of CoS2 capacity is available for allocation when needed.
	Theta float64
	// Deadline is the time s within which demands not satisfied upon
	// request must be satisfied.
	Deadline time.Duration
}

// String implements fmt.Stringer.
func (c PoolCommitment) String() string {
	return fmt.Sprintf("CoS2 theta=%.2f, deadline %s", c.Theta, c.Deadline)
}

// Validate checks 0 < θ <= 1 and a non-negative deadline.
func (c PoolCommitment) Validate() error {
	if !(c.Theta > 0 && c.Theta <= 1) {
		return fmt.Errorf("%w: got %v", ErrTheta, c.Theta)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("%w: got %v", ErrDeadline, c.Deadline)
	}
	return nil
}

// DeadlineSlots returns s expressed in whole measurement slots.
func (c PoolCommitment) DeadlineSlots(interval time.Duration) int {
	if interval <= 0 || c.Deadline <= 0 {
		return 0
	}
	return int(c.Deadline / interval)
}
