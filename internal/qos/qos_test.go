package qos

import (
	"strings"
	"testing"
	"time"
)

// caseStudyQoS is the paper's case-study requirement: Ulow=0.5,
// Uhigh=0.66, Udegr=0.9, M=97%, Tdegr=30min.
func caseStudyQoS() AppQoS {
	return AppQoS{
		ULow:     0.5,
		UHigh:    0.66,
		UDegr:    0.9,
		MPercent: 97,
		TDegr:    30 * time.Minute,
	}
}

func TestAppQoSValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*AppQoS)
		wantErr bool
	}{
		{name: "case study values", mutate: func(q *AppQoS) {}},
		{name: "Ulow equals Uhigh ok", mutate: func(q *AppQoS) { q.ULow = q.UHigh }},
		{name: "MPercent 100 ok", mutate: func(q *AppQoS) { q.MPercent = 100 }},
		{name: "TDegr zero ok", mutate: func(q *AppQoS) { q.TDegr = 0 }},
		{name: "Udegr equals Uhigh ok", mutate: func(q *AppQoS) { q.UDegr = q.UHigh }},
		{name: "zero Ulow", mutate: func(q *AppQoS) { q.ULow = 0 }, wantErr: true},
		{name: "negative Ulow", mutate: func(q *AppQoS) { q.ULow = -0.1 }, wantErr: true},
		{name: "Ulow above Uhigh", mutate: func(q *AppQoS) { q.ULow = 0.7 }, wantErr: true},
		{name: "Uhigh at one", mutate: func(q *AppQoS) { q.UHigh = 1; q.UDegr = 1 }, wantErr: true},
		{name: "Udegr below Uhigh", mutate: func(q *AppQoS) { q.UDegr = 0.5 }, wantErr: true},
		{name: "Udegr at one", mutate: func(q *AppQoS) { q.UDegr = 1 }, wantErr: true},
		{name: "MPercent zero", mutate: func(q *AppQoS) { q.MPercent = 0 }, wantErr: true},
		{name: "MPercent above 100", mutate: func(q *AppQoS) { q.MPercent = 101 }, wantErr: true},
		{name: "negative TDegr", mutate: func(q *AppQoS) { q.TDegr = -time.Minute }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := caseStudyQoS()
			tt.mutate(&q)
			err := q.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMDegrPercent(t *testing.T) {
	q := caseStudyQoS()
	if got := q.MDegrPercent(); got != 3 {
		t.Errorf("MDegrPercent = %v, want 3", got)
	}
	q.MPercent = 100
	if got := q.MDegrPercent(); got != 0 {
		t.Errorf("MDegrPercent = %v, want 0", got)
	}
}

func TestBurstFactorRange(t *testing.T) {
	q := caseStudyQoS()
	ideal, minimum := q.BurstFactorRange()
	if ideal != 2 {
		t.Errorf("ideal burst factor = %v, want 2", ideal)
	}
	want := 1 / 0.66
	if diff := minimum - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("minimum burst factor = %v, want %v", minimum, want)
	}
	if ideal < minimum {
		t.Error("ideal burst factor should be >= minimum")
	}
}

func TestTDegrSlots(t *testing.T) {
	tests := []struct {
		name        string
		tdegr       time.Duration
		interval    time.Duration
		wantR       int
		wantLimited bool
	}{
		{name: "30min at 5min", tdegr: 30 * time.Minute, interval: 5 * time.Minute, wantR: 6, wantLimited: true},
		{name: "2h at 5min", tdegr: 2 * time.Hour, interval: 5 * time.Minute, wantR: 24, wantLimited: true},
		{name: "unlimited", tdegr: 0, interval: 5 * time.Minute},
		{name: "bad interval", tdegr: 30 * time.Minute, interval: 0},
		{name: "tdegr shorter than interval", tdegr: time.Minute, interval: 5 * time.Minute, wantR: 0, wantLimited: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := caseStudyQoS()
			q.TDegr = tt.tdegr
			r, limited := q.TDegrSlots(tt.interval)
			if r != tt.wantR || limited != tt.wantLimited {
				t.Errorf("TDegrSlots = (%d,%v), want (%d,%v)", r, limited, tt.wantR, tt.wantLimited)
			}
		})
	}
}

func TestRequirementValidate(t *testing.T) {
	good := Requirement{Normal: caseStudyQoS(), Failure: caseStudyQoS()}
	if err := good.Validate(); err != nil {
		t.Errorf("valid requirement rejected: %v", err)
	}

	bad := good
	bad.Normal.ULow = 0
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid normal mode accepted")
	}
	if !strings.Contains(err.Error(), "normal mode") {
		t.Errorf("error %q should mention the failing mode", err)
	}

	bad = good
	bad.Failure.UDegr = 2
	err = bad.Validate()
	if err == nil {
		t.Fatal("invalid failure mode accepted")
	}
	if !strings.Contains(err.Error(), "failure mode") {
		t.Errorf("error %q should mention the failing mode", err)
	}
}

func TestPoolCommitmentValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       PoolCommitment
		wantErr bool
	}{
		{name: "case study", c: PoolCommitment{Theta: 0.95, Deadline: time.Hour}},
		{name: "theta one", c: PoolCommitment{Theta: 1}},
		{name: "theta zero", c: PoolCommitment{}, wantErr: true},
		{name: "theta above one", c: PoolCommitment{Theta: 1.01}, wantErr: true},
		{name: "negative deadline", c: PoolCommitment{Theta: 0.5, Deadline: -time.Second}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDeadlineSlots(t *testing.T) {
	c := PoolCommitment{Theta: 0.95, Deadline: time.Hour}
	if got := c.DeadlineSlots(5 * time.Minute); got != 12 {
		t.Errorf("DeadlineSlots = %d, want 12", got)
	}
	if got := c.DeadlineSlots(0); got != 0 {
		t.Errorf("DeadlineSlots(interval=0) = %d, want 0", got)
	}
	c.Deadline = 0
	if got := c.DeadlineSlots(5 * time.Minute); got != 0 {
		t.Errorf("DeadlineSlots(deadline=0) = %d, want 0", got)
	}
}

func TestAppQoSString(t *testing.T) {
	q := caseStudyQoS()
	got := q.String()
	for _, want := range []string{"0.50", "0.66", "Mdegr=3%", "Udegr=0.90", "Tdegr=30m0s"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	q.TDegr = 0
	if strings.Contains(q.String(), "Tdegr") {
		t.Error("unlimited Tdegr should not be printed")
	}
	q.MaxDegradedPerDay = 4
	if !strings.Contains(q.String(), "4 degraded epochs/day") {
		t.Errorf("String() = %q, missing epoch budget", q.String())
	}
}

func TestPoolCommitmentString(t *testing.T) {
	c := PoolCommitment{Theta: 0.6, Deadline: time.Hour}
	got := c.String()
	if !strings.Contains(got, "0.60") || !strings.Contains(got, "1h0m0s") {
		t.Errorf("String() = %q", got)
	}
}

func TestClassOfServiceString(t *testing.T) {
	if CoS1.String() != "CoS1" || CoS2.String() != "CoS2" {
		t.Errorf("String() = %q,%q", CoS1, CoS2)
	}
	if got := ClassOfService(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown CoS String() = %q", got)
	}
}
