package balance

import (
	"strings"
	"testing"
)

func TestStablePool(t *testing.T) {
	capacity := map[string]float64{"s1": 10, "s2": 10}
	classes := []Class{
		{Name: "a", Load: 4, Servers: []string{"s1"}},
		{Name: "b", Load: 4, Servers: []string{"s2"}},
		{Name: "c", Load: 8, Servers: []string{"s1", "s2"}},
	}
	v, err := Stable(classes, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("stable pool reported violation %v", v)
	}
}

func TestUnstableSubset(t *testing.T) {
	// Classes a and b individually fit, but both can only use s1 and
	// together they exceed it — the subset condition is what catches it.
	capacity := map[string]float64{"s1": 10, "s2": 100}
	classes := []Class{
		{Name: "a", Load: 6, Servers: []string{"s1"}},
		{Name: "b", Load: 6, Servers: []string{"s1"}},
		{Name: "spectator", Load: 1, Servers: []string{"s2"}},
	}
	v, err := Stable(classes, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("unstable pool reported stable")
	}
	if len(v.Classes) != 2 || v.Classes[0] != "a" || v.Classes[1] != "b" {
		t.Errorf("violation subset = %v, want minimal witness [a b]", v.Classes)
	}
	if v.Load != 12 || v.Capacity != 10 {
		t.Errorf("violation = %+v, want load 12 over capacity 10", v)
	}
	if !strings.Contains(v.Error(), "12") {
		t.Errorf("violation error %q lacks the load", v.Error())
	}
}

func TestBoundaryIsUnstable(t *testing.T) {
	// Load equal to capacity is not stable (strict inequality).
	v, err := Stable(
		[]Class{{Name: "a", Load: 10, Servers: []string{"s1"}}},
		map[string]float64{"s1": 10})
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("load == capacity reported stable; stability requires strict inequality")
	}
}

func TestStableRejections(t *testing.T) {
	capacity := map[string]float64{"s1": 10}
	cases := []struct {
		name    string
		classes []Class
	}{
		{"no classes", nil},
		{"negative load", []Class{{Name: "a", Load: -1, Servers: []string{"s1"}}}},
		{"no servers", []Class{{Name: "a", Load: 1}}},
		{"unknown server", []Class{{Name: "a", Load: 1, Servers: []string{"ghost"}}}},
		{"too many", make([]Class, MaxClasses+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := range tc.classes {
				if tc.classes[i].Name == "" && tc.classes[i].Servers == nil && tc.name == "too many" {
					tc.classes[i] = Class{Name: "c", Load: 0, Servers: []string{"s1"}}
				}
			}
			if _, err := Stable(tc.classes, capacity); err == nil {
				t.Errorf("Stable accepted %s", tc.name)
			}
		})
	}
}
