// Package balance implements the balanced-fairness stability baseline
// from "Performance of Balanced Fairness in Resource Pools" (see
// PAPERS.md): a pool of servers shared by traffic classes, where class
// i may only use its subset S_i of servers, is stable under balanced
// fairness if and only if, for every nonempty subset A of classes, the
// aggregate offered load of A is strictly less than the total capacity
// of the union of the servers A can reach.
//
// The check is the exact recursion over class subsets — exponential in
// the class count, which is why it is a small-pool analytical baseline
// rather than a planner: the property suite uses it to cross-check the
// simulator's feasibility verdicts, since a placement the simulator
// accepts must in particular be stable in the mean.
package balance

import (
	"fmt"
	"math"
	"sort"
)

// MaxClasses bounds the exact subset recursion (2^n subsets).
const MaxClasses = 20

// Class is one traffic class: an offered load (in the same capacity
// units as the servers) and the set of servers that can serve it.
type Class struct {
	// Name identifies the class in violation reports.
	Name string
	// Load is the class's offered load ρ (mean demand).
	Load float64
	// Servers are the servers the class may use.
	Servers []string
}

// Violation describes one failed stability condition: a class subset
// whose aggregate load meets or exceeds the capacity of its reachable
// server union.
type Violation struct {
	// Classes are the names of the violating subset, sorted.
	Classes []string
	// Load is the subset's aggregate offered load.
	Load float64
	// Capacity is the total capacity of the union of reachable servers.
	Capacity float64
}

func (v *Violation) Error() string {
	return fmt.Sprintf("balance: classes %v offer load %.6g >= reachable capacity %.6g",
		v.Classes, v.Load, v.Capacity)
}

// Stable runs the exact stability recursion: every nonempty subset A of
// classes must satisfy Σ_{i∈A} Load_i < capacity(∪_{i∈A} Servers_i).
// It returns the first violating subset found (smallest cardinality,
// then lexicographic), or nil when the pool is stable.
func Stable(classes []Class, capacity map[string]float64) (*Violation, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("balance: no classes")
	}
	if len(classes) > MaxClasses {
		return nil, fmt.Errorf("balance: %d classes exceed the exact recursion bound %d",
			len(classes), MaxClasses)
	}
	for _, c := range classes {
		if c.Load < 0 || math.IsNaN(c.Load) || math.IsInf(c.Load, 0) {
			return nil, fmt.Errorf("balance: class %q has bad load %v", c.Name, c.Load)
		}
		if len(c.Servers) == 0 {
			return nil, fmt.Errorf("balance: class %q can reach no servers", c.Name)
		}
		for _, s := range c.Servers {
			cap, ok := capacity[s]
			if !ok {
				return nil, fmt.Errorf("balance: class %q references unknown server %q", c.Name, s)
			}
			if cap <= 0 || math.IsNaN(cap) || math.IsInf(cap, 0) {
				return nil, fmt.Errorf("balance: server %q has bad capacity %v", s, cap)
			}
		}
	}
	// Enumerate subsets in order of increasing cardinality so the
	// reported violation is a minimal (and deterministic) witness.
	n := len(classes)
	masks := make([]uint32, 0, (1<<n)-1)
	for m := uint32(1); m < 1<<n; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		bi, bj := popcount(masks[i]), popcount(masks[j])
		if bi != bj {
			return bi < bj
		}
		return masks[i] < masks[j]
	})
	for _, m := range masks {
		var load float64
		union := make(map[string]bool)
		var names []string
		for i := 0; i < n; i++ {
			if m&(1<<i) == 0 {
				continue
			}
			load += classes[i].Load
			names = append(names, classes[i].Name)
			for _, s := range classes[i].Servers {
				union[s] = true
			}
		}
		var cap float64
		for s := range union {
			cap += capacity[s]
		}
		if load >= cap {
			sort.Strings(names)
			return &Violation{Classes: names, Load: load, Capacity: cap}, nil
		}
	}
	return nil, nil
}

func popcount(m uint32) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
