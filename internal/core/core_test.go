package core

import (
	"context"
	"testing"
	"time"

	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/trace"
	"ropus/internal/workload"
)

func caseStudyRequirement() qos.Requirement {
	normal := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
	fail := normal
	fail.TDegr = 30 * time.Minute
	return qos.Requirement{Normal: normal, Failure: fail}
}

func testConfig() Config {
	ga := placement.DefaultGAConfig(17)
	ga.MaxGenerations = 40
	ga.Stagnation = 10
	return Config{
		Commitment:           qos.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ga,
		Tolerance:            0.1,
	}
}

// smallFleet generates a quick 6-app, 1-week fleet at a 1-hour interval.
func smallFleet(t *testing.T) trace.Set {
	t.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky:    1,
		Bursty:   2,
		Smooth:   3,
		Weeks:    1,
		Interval: time.Hour,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "bad commitment", mutate: func(c *Config) { c.Commitment.Theta = 0 }},
		{name: "zero CPUs", mutate: func(c *Config) { c.ServerCPUs = 0 }},
		{name: "zero capacity per CPU", mutate: func(c *Config) { c.ServerCapacityPerCPU = 0 }},
		{name: "negative tolerance", mutate: func(c *Config) { c.Tolerance = -1 }},
		{name: "bad GA", mutate: func(c *Config) { c.GA.PopulationSize = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
			if _, err := New(cfg); err == nil {
				t.Error("New() should fail")
			}
		})
	}
}

func TestRequirements(t *testing.T) {
	def := caseStudyRequirement()
	special := def
	special.Normal.MPercent = 100
	reqs := Requirements{Default: def, PerApp: map[string]qos.Requirement{"x": special}}
	if err := reqs.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := reqs.For("x"); got.Normal.MPercent != 100 {
		t.Error("per-app requirement not honoured")
	}
	if got := reqs.For("other"); got.Normal.MPercent != 97 {
		t.Error("default requirement not honoured")
	}

	bad := reqs
	bad.Default.Normal.ULow = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid default accepted")
	}
	bad = Requirements{Default: def, PerApp: map[string]qos.Requirement{"x": {}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid per-app requirement accepted")
	}
}

func TestTranslate(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	set := smallFleet(t)
	reqs := Requirements{Default: caseStudyRequirement()}
	tr, err := f.Translate(context.Background(), set, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Normal) != len(set) || len(tr.Failure) != len(set) {
		t.Fatalf("translation covers %d/%d apps, want %d", len(tr.Normal), len(tr.Failure), len(set))
	}
	for i, p := range tr.Normal {
		if p.AppID != set[i].AppID {
			t.Errorf("partition %d is %q, want %q", i, p.AppID, set[i].AppID)
		}
	}
	if tr.CPeakTotal() <= 0 {
		t.Error("CPeakTotal should be positive")
	}
	// Failure mode carries the extra Tdegr constraint, so its caps are
	// at least as large as normal mode's.
	for i := range tr.Normal {
		if tr.Failure[i].DNewMax < tr.Normal[i].DNewMax-1e-9 {
			t.Errorf("app %s: failure cap %v below normal cap %v",
				set[i].AppID, tr.Failure[i].DNewMax, tr.Normal[i].DNewMax)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs := Requirements{Default: caseStudyRequirement()}
	if _, err := f.Translate(context.Background(), trace.Set{}, reqs); err == nil {
		t.Error("empty trace set accepted")
	}
	set := smallFleet(t)
	if _, err := f.Translate(context.Background(), set, Requirements{}); err == nil {
		t.Error("invalid requirements accepted")
	}
}

func TestFullPipeline(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	set := smallFleet(t)
	reqs := Requirements{Default: caseStudyRequirement()}
	report, err := f.Run(context.Background(), set, reqs)
	if err != nil {
		t.Fatal(err)
	}

	cons := report.Consolidation
	if !cons.Plan.Feasible {
		t.Fatal("consolidated plan infeasible")
	}
	if cons.ServersUsed() < 1 || cons.ServersUsed() > len(set) {
		t.Errorf("ServersUsed = %d, want within [1,%d]", cons.ServersUsed(), len(set))
	}
	// Consolidation should beat one-app-per-server for this fleet.
	if cons.ServersUsed() >= len(set) {
		t.Errorf("no consolidation achieved: %d servers for %d apps", cons.ServersUsed(), len(set))
	}
	// Required capacity cannot exceed the sum of peak allocations.
	if cons.CRequTotal() > report.Translation.CPeakTotal()+1e-6 {
		t.Errorf("CRequ %v exceeds CPeak %v", cons.CRequTotal(), report.Translation.CPeakTotal())
	}
	if report.Failures == nil {
		t.Fatal("missing failure report")
	}
	if len(report.Failures.Scenarios) != cons.ServersUsed() {
		t.Errorf("%d failure scenarios for %d used servers",
			len(report.Failures.Scenarios), cons.ServersUsed())
	}
}

func TestPerAppRequirementsFlowThroughPipeline(t *testing.T) {
	// A premium application (no degradation allowed) among standard
	// ones: its translation must keep the full peak while the others'
	// caps shrink.
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	set := smallFleet(t)
	premiumID := set[0].AppID
	standard := caseStudyRequirement()
	premium := standard
	premium.Normal.MPercent = 100
	premium.Normal.TDegr = 0

	tr, err := f.Translate(context.Background(), set, Requirements{
		Default: standard,
		PerApp:  map[string]qos.Requirement{premiumID: premium},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.Normal {
		if p.AppID == premiumID {
			if p.DNewMax != p.DMax {
				t.Errorf("premium app capped: %v < %v", p.DNewMax, p.DMax)
			}
			continue
		}
		// Standard apps with bursty traces should see some reduction.
		if set[i].Peak() > 0 && p.DNewMax > p.DMax {
			t.Errorf("app %s cap above peak", p.AppID)
		}
	}
	// And the whole pipeline still runs with mixed requirements.
	cons, err := f.Consolidate(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !cons.Plan.Feasible {
		t.Error("mixed-requirement consolidation infeasible")
	}
}

func TestPlanForMultiFailures(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	set := smallFleet(t)
	reqs := Requirements{Default: caseStudyRequirement()}
	tr, err := f.Translate(context.Background(), set, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := f.Consolidate(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if cons.ServersUsed() < 2 {
		t.Skip("fleet consolidated to a single server; k=2 not applicable")
	}
	report, err := f.PlanForMultiFailures(context.Background(), tr, cons, 2)
	if err != nil {
		t.Fatal(err)
	}
	used := cons.ServersUsed()
	wantScenarios := used * (used - 1) / 2
	if len(report.Scenarios) != wantScenarios {
		t.Errorf("%d scenarios, want C(%d,2)=%d", len(report.Scenarios), used, wantScenarios)
	}
	if _, err := f.PlanForMultiFailures(context.Background(), nil, nil, 2); err == nil {
		t.Error("nil inputs accepted")
	}
	if _, err := f.PlanForMultiFailures(context.Background(), tr, cons, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLinearScoreConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Score = placement.ScoreLinear
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := smallFleet(t)
	reqs := Requirements{Default: caseStudyRequirement()}
	tr, err := f.Translate(context.Background(), set, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := f.Consolidate(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Problem.Score != placement.ScoreLinear {
		t.Error("score model not threaded through to the problem")
	}
	if !cons.Plan.Feasible {
		t.Error("linear-score consolidation infeasible")
	}
}

func TestConsolidateErrors(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Consolidate(context.Background(), nil); err == nil {
		t.Error("nil translation accepted")
	}
	if _, err := f.Consolidate(context.Background(), &Translation{}); err == nil {
		t.Error("empty translation accepted")
	}
	if _, err := f.PlanForFailures(context.Background(), nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}

// TestSharedExternalCache: two frameworks handed the same SimCache warm
// each other up — the second run's lookups hit results the first run
// simulated — and results stay identical to an uncached run.
func TestSharedExternalCache(t *testing.T) {
	set := smallFleet(t)
	reqs := Requirements{Default: caseStudyRequirement()}

	cold := testConfig()
	cold.CacheBytes = -1
	fCold, err := New(cold)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fCold.Run(context.Background(), set, reqs)
	if err != nil {
		t.Fatal(err)
	}

	shared := placement.NewSimCache(0)
	for i := 0; i < 2; i++ {
		cfg := testConfig()
		cfg.Cache = shared
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Run(context.Background(), set, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Failures.SpareNeeded != want.Failures.SpareNeeded ||
			got.Consolidation.ServersUsed() != want.Consolidation.ServersUsed() ||
			got.Consolidation.CRequTotal() != want.Consolidation.CRequTotal() {
			t.Fatalf("run %d with shared cache diverged from the uncached run", i)
		}
		if f.CacheStats() != shared.Stats() {
			t.Fatalf("run %d: CacheStats not served by the shared cache", i)
		}
	}
	stats := shared.Stats()
	if stats.Hits == 0 {
		t.Errorf("second run over a shared cache recorded no hits: %+v", stats)
	}
}
