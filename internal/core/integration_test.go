package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/sim"
	"ropus/internal/wlmgr"
	"ropus/internal/workload"
)

// TestPipelineInvariants runs the full pipeline over a collection of
// randomized small fleets and checks the contracts that tie the stages
// together. It is the repository's integration test: portfolio, sim,
// placement, failure and core must agree with each other for every
// assertion to hold.
func TestPipelineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		seed := rng.Int63()
		theta := []float64{0.5, 0.6, 0.8, 0.95}[trial%4]

		set, err := workload.Fleet(workload.FleetConfig{
			Spiky:    rng.Intn(2),
			Bursty:   1 + rng.Intn(2),
			Smooth:   2 + rng.Intn(3),
			Weeks:    1,
			Interval: time.Hour,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}

		ga := placement.DefaultGAConfig(seed)
		ga.MaxGenerations = 30
		ga.Stagnation = 8
		f, err := New(Config{
			Commitment:           qos.PoolCommitment{Theta: theta, Deadline: time.Hour},
			ServerCPUs:           16,
			ServerCapacityPerCPU: 1,
			GA:                   ga,
			Tolerance:            0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: time.Hour}
		report, err := f.Run(context.Background(), set, Requirements{Default: qos.Requirement{Normal: q, Failure: q}})
		if err != nil {
			t.Fatalf("trial %d (seed %d, theta %v): %v", trial, seed, theta, err)
		}

		checkTranslationInvariants(t, report, q, theta)
		checkPlanInvariants(t, report, theta)
		checkWorkloadManagerAgreement(t, report)
	}
}

// checkTranslationInvariants: caps never exceed peaks; CoS1 share
// matches the breakpoint; allocation traces are consistent.
func checkTranslationInvariants(t *testing.T, r *Report, q qos.AppQoS, theta float64) {
	t.Helper()
	for i, p := range r.Translation.Normal {
		if p.DNewMax > p.DMax+1e-9 {
			t.Errorf("app %s: cap %v above peak %v", p.AppID, p.DNewMax, p.DMax)
		}
		wantCoS1Peak := p.P * p.DNewMax / q.ULow
		if got := p.CoS1Peak(); got > wantCoS1Peak+1e-9 {
			t.Errorf("app %s: CoS1 peak %v above breakpoint share %v", p.AppID, got, wantCoS1Peak)
		}
		// Demand at or below the cap receives allocation demand/Ulow.
		tr := r.Translation.Traces[i]
		for j, d := range tr.Samples {
			total := p.CoS1.Samples[j] + p.CoS2.Samples[j]
			if d <= p.DNewMax && total < d/q.ULow-1e-9 {
				t.Fatalf("app %s slot %d: allocation %v below %v", p.AppID, j, total, d/q.ULow)
			}
			if total > p.MaxAllocation()+1e-9 {
				t.Fatalf("app %s slot %d: allocation %v above max %v", p.AppID, j, total, p.MaxAllocation())
			}
		}
	}
}

// checkPlanInvariants: every app hosted exactly once; per-server
// required capacity within the server; measured θ at required capacity
// meets the commitment.
func checkPlanInvariants(t *testing.T, r *Report, theta float64) {
	t.Helper()
	plan := r.Consolidation.Plan
	if !plan.Feasible {
		t.Fatal("plan infeasible")
	}
	hosted := make(map[string]int)
	for s, usage := range plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		srv := r.Consolidation.Problem.Servers[s]
		if usage.Required > srv.Capacity()+1e-6 {
			t.Errorf("server %s: required %v above capacity %v", srv.ID, usage.Required, srv.Capacity())
		}
		if !usage.Result.Fits(theta) {
			t.Errorf("server %s: result does not fit commitment theta=%v: %+v", srv.ID, theta, usage.Result)
		}
		for _, id := range usage.AppIDs {
			hosted[id]++
		}
	}
	for _, p := range r.Translation.Normal {
		if hosted[p.AppID] != 1 {
			t.Errorf("app %s hosted %d times", p.AppID, hosted[p.AppID])
		}
	}
}

// checkWorkloadManagerAgreement replays each consolidated server through
// the workload-manager simulator at its required capacity: the
// guaranteed class must never overload (the placement's core promise).
func checkWorkloadManagerAgreement(t *testing.T, r *Report) {
	t.Helper()
	byID := make(map[string]int, len(r.Translation.Normal))
	for i, p := range r.Translation.Normal {
		byID[p.AppID] = i
	}
	for s, usage := range r.Consolidation.Plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		containers := make([]wlmgr.Container, 0, len(usage.AppIDs))
		for _, id := range usage.AppIDs {
			i := byID[id]
			containers = append(containers, wlmgr.Container{
				Demand:    r.Translation.Traces[i],
				Partition: r.Translation.Normal[i],
			})
		}
		res, err := wlmgr.Run(context.Background(), usage.Required+1e-9, containers, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.CoS1Overload != 0 {
			t.Errorf("server %s: %d CoS1 overload slots at required capacity",
				r.Consolidation.Problem.Servers[s].ID, res.CoS1Overload)
		}
	}
}

// TestRequiredCapacityAgreesWithSim cross-checks the plan's reported
// required capacity against a fresh simulator run: replaying the
// server's workloads at the reported capacity must satisfy the
// commitment, and replaying clearly below it must not (unless the
// requirement collapsed to the CoS1 peak).
func TestRequiredCapacityAgreesWithSim(t *testing.T) {
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 2, Smooth: 3,
		Weeks: 1, Interval: time.Hour, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
	report, err := f.Run(context.Background(), set, Requirements{Default: qos.Requirement{Normal: q, Failure: q}})
	if err != nil {
		t.Fatal(err)
	}
	theta := 0.6
	for s, usage := range report.Consolidation.Plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		workloads := make([]sim.Workload, 0, len(usage.AppIDs))
		for _, a := range report.Consolidation.Problem.Apps {
			for _, id := range usage.AppIDs {
				if a.ID == id {
					workloads = append(workloads, a.Workload)
				}
			}
		}
		agg, err := sim.NewAggregate(workloads)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{
			Capacity:      usage.Required,
			Commitment:    report.Consolidation.Problem.Commitment,
			SlotsPerDay:   report.Consolidation.Problem.SlotsPerDay,
			DeadlineSlots: report.Consolidation.Problem.DeadlineSlots,
		}
		res, err := agg.Replay(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fits(theta) {
			t.Errorf("server %d: replay at reported required capacity does not fit", s)
		}
		// Clearly below the requirement the commitment must fail,
		// unless the requirement equals the CoS1 floor.
		below := usage.Required * 0.8
		if below > agg.CoS1Peak()+0.01 {
			cfg.Capacity = below
			res, err = agg.Replay(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fits(theta) {
				t.Errorf("server %d: replay at 80%% of required capacity still fits — requirement overstated", s)
			}
		}
	}
}
