package core

import (
	"context"
	"errors"
	"testing"

	"ropus/internal/faultinject"
)

func TestCancelTranslate(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := Requirements{Default: caseStudyRequirement()}
	if _, err := f.Translate(ctx, smallFleet(t), reqs); !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled, got %v", err)
	}
}

func TestCancelRunDegradesFailureSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := testConfig()
	// Cancel the moment the failure sweep starts its first scenario:
	// translation and consolidation have finished, so Run still returns
	// a full report whose failure section is a truncated prefix.
	cfg.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		if point == "failure.scenario" {
			cancel()
		}
		return faultinject.Outcome{}
	})
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := Requirements{Default: caseStudyRequirement()}
	report, err := f.Run(ctx, smallFleet(t), reqs)
	if err != nil {
		t.Fatalf("cancelled pipeline should degrade, got %v", err)
	}
	if report.Consolidation == nil || !report.Consolidation.Plan.Feasible {
		t.Fatal("consolidation should have completed before the cancel")
	}
	if !report.Failures.Truncated {
		t.Error("failure sweep should be flagged Truncated")
	}
	used := report.Consolidation.ServersUsed()
	if len(report.Failures.Scenarios) >= used {
		t.Errorf("truncated sweep evaluated %d of %d scenarios", len(report.Failures.Scenarios), used)
	}
}

func TestChaosRunScenarioErrorSurfacesInReport(t *testing.T) {
	cfg := testConfig()
	cfg.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "failure.scenario", Nth: 1})
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := Requirements{Default: caseStudyRequirement()}
	report, err := f.Run(context.Background(), smallFleet(t), reqs)
	if err != nil {
		t.Fatalf("one errored scenario should not abort the pipeline: %v", err)
	}
	errs := report.Failures.Errors()
	if len(errs) != 1 || !errors.Is(errs[0], faultinject.ErrInjected) {
		t.Errorf("report should record exactly the injected scenario error, got %v", errs)
	}
}
