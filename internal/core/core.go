// Package core assembles the R-Opus composite framework (paper
// Figure 2): application owners specify per-application QoS requirements
// for normal and failure modes; the pool operator specifies resource
// access commitments for two classes of service; a QoS translation maps
// each application's demands onto the classes; and the workload
// placement service consolidates the translated workloads onto a small
// number of servers and reports whether single-server failures can be
// absorbed without a spare.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"

	"ropus/internal/checkpoint"
	"ropus/internal/failure"
	"ropus/internal/faultinject"
	"ropus/internal/obslog"
	"ropus/internal/placement"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/resilience"
	"ropus/internal/robust"
	"ropus/internal/sim"
	"ropus/internal/telemetry"
	"ropus/internal/topology"
	"ropus/internal/trace"
)

// Requirements maps applications to their QoS requirements. Apps not in
// PerApp use Default.
type Requirements struct {
	Default qos.Requirement
	PerApp  map[string]qos.Requirement
}

// For returns the requirement for an application.
func (r Requirements) For(appID string) qos.Requirement {
	if req, ok := r.PerApp[appID]; ok {
		return req
	}
	return r.Default
}

// Validate checks every requirement that can be handed out.
func (r Requirements) Validate() error {
	if err := r.Default.Validate(); err != nil {
		return fmt.Errorf("core: default requirement: %w", err)
	}
	for id, req := range r.PerApp {
		if err := req.Validate(); err != nil {
			return fmt.Errorf("core: requirement for %q: %w", id, err)
		}
	}
	return nil
}

// Config parameterizes a Framework.
type Config struct {
	// Commitment is the pool's CoS2 resource access commitment.
	Commitment qos.PoolCommitment
	// ServerCPUs is Z for every pool server (the case study uses
	// 16-way servers); ServerCapacityPerCPU is normally 1.
	ServerCPUs           int
	ServerCapacityPerCPU float64
	// GA configures the consolidation search.
	GA placement.GAConfig
	// Tolerance for required-capacity bisection (0 = default).
	Tolerance float64
	// Score selects the placement score model (zero value = paper's).
	Score placement.ScoreModel
	// Hooks receives pipeline telemetry (stage spans, GA and simulator
	// metrics); nil disables it. It is propagated to every stage:
	// translation, consolidation and failure planning.
	Hooks telemetry.Hooks
	// Inject is the test-only fault injector propagated to the placement
	// problems and failure sweeps the framework builds; nil (the
	// production default) injects nothing.
	Inject faultinject.Injector
	// Workers bounds how many failure scenarios are analyzed
	// concurrently: 0 selects GOMAXPROCS, 1 forces the sequential sweep.
	// Results are identical at every worker count.
	Workers int
	// CacheBytes bounds the framework's shared simulation cache, which
	// memoizes per-(server-shape, app-group) results across the base
	// consolidation, every failure scenario, and the capacity planner.
	// 0 selects the default bound (placement.DefaultSimCacheBytes);
	// negative disables the cache. Cached reuse is bit-exact, so results
	// do not depend on this setting.
	CacheBytes int64
	// Cache, when non-nil, is an externally owned simulation cache the
	// framework uses instead of building its own; CacheBytes is ignored.
	// A long-running host (the planning service) hands the same cache to
	// every framework it builds so jobs warm each other up.
	Cache *placement.SimCache
	// Retry is the self-healing policy applied to every failure scenario
	// the framework sweeps: transient analysis faults are re-attempted
	// under it before a scenario is recorded inconclusive. The zero value
	// makes a single attempt (the historical behaviour).
	Retry resilience.Policy
	// Journal, when non-nil, checkpoints completed failure scenarios so
	// an interrupted sweep can resume without recomputing them; see
	// failure.Input.Journal. With PartitionApps > 0 it also checkpoints
	// each solved placement partition.
	Journal *checkpoint.Journal
	// PartitionApps, when > 0, switches consolidation to the hierarchical
	// pool-of-pools search: the fleet is clustered into sub-pools of at
	// most this many applications, each solved independently (see
	// placement.ConsolidateHierarchical). 0 keeps the flat search.
	PartitionApps int
	// Topology, when non-nil and PartitionApps > 0, makes the
	// hierarchical stitch rack-aware.
	Topology *topology.Topology
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Commitment.Validate(); err != nil {
		return err
	}
	if c.ServerCPUs <= 0 {
		return fmt.Errorf("core: ServerCPUs %d <= 0", c.ServerCPUs)
	}
	if c.ServerCapacityPerCPU <= 0 {
		return fmt.Errorf("core: ServerCapacityPerCPU %v <= 0", c.ServerCapacityPerCPU)
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("core: Tolerance %v < 0", c.Tolerance)
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if c.PartitionApps < 0 {
		return fmt.Errorf("core: PartitionApps %d < 0", c.PartitionApps)
	}
	return c.GA.Validate()
}

// Framework is the R-Opus capacity self-management system.
type Framework struct {
	cfg Config
	// cache is the shared cross-run simulation cache every placement
	// problem the framework builds points at (nil when disabled).
	cache *placement.SimCache
}

// New builds a Framework from a validated configuration.
func New(cfg Config) (*Framework, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Framework{cfg: cfg}
	switch {
	case cfg.Cache != nil:
		f.cache = cfg.Cache
	case cfg.CacheBytes >= 0:
		f.cache = placement.NewSimCache(cfg.CacheBytes)
	}
	return f, nil
}

// CacheStats snapshots the shared simulation cache's counters; the zero
// value is returned when the cache is disabled.
func (f *Framework) CacheStats() placement.CacheStats {
	if f.cache == nil {
		return placement.CacheStats{}
	}
	return f.cache.Stats()
}

// Translation is the output of the QoS translation stage: normal- and
// failure-mode partitions for every application, in trace order.
type Translation struct {
	Traces  trace.Set
	Normal  []*portfolio.Partition
	Failure []*portfolio.Partition
}

// CPeakTotal returns the sum of per-application maximum allocations for
// the normal-mode translation (the paper's ΣC_peak).
func (t *Translation) CPeakTotal() float64 {
	sum := 0.0
	for _, p := range t.Normal {
		sum += p.MaxAllocation()
	}
	return sum
}

// Translate runs the QoS translation for every application. Cancelling
// ctx aborts between per-application translations with a wrapped ctx
// error (translations are fast; there is no partial result).
func (f *Framework) Translate(ctx context.Context, traces trace.Set, reqs Requirements) (*Translation, error) {
	if err := traces.Validate(); err != nil {
		return nil, err
	}
	if err := reqs.Validate(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpanCtx(ctx, f.cfg.Hooks, "core.translate",
		telemetry.Int("apps", len(traces)))
	defer span.End()
	out := &Translation{
		Traces:  traces,
		Normal:  make([]*portfolio.Partition, len(traces)),
		Failure: make([]*portfolio.Partition, len(traces)),
	}
	theta := f.cfg.Commitment.Theta
	for i, tr := range traces {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: translate: %w", err)
		}
		req := reqs.For(tr.AppID)
		normal, err := portfolio.TranslateCtx(ctx, tr, req.Normal, theta, f.cfg.Hooks)
		if err != nil {
			return nil, fmt.Errorf("core: translate %q (normal): %w", tr.AppID, err)
		}
		fail, err := portfolio.TranslateCtx(ctx, tr, req.Failure, theta, f.cfg.Hooks)
		if err != nil {
			return nil, fmt.Errorf("core: translate %q (failure): %w", tr.AppID, err)
		}
		out.Normal[i] = normal
		out.Failure[i] = fail
	}
	obslog.From(ctx).InfoContext(ctx, "core.translate",
		slog.Int("apps", len(traces)),
		slog.Float64("theta", theta))
	return out, nil
}

// Consolidation is the result of the workload placement stage.
type Consolidation struct {
	Problem *placement.Problem
	Plan    *placement.Plan
	// Hier describes the pool-of-pools decomposition when the framework
	// ran the hierarchical search (Config.PartitionApps > 0); nil for
	// flat consolidations. Hier.Plan and Plan are the same plan.
	Hier *placement.HierPlan
}

// ServersUsed returns the number of servers hosting applications.
func (c *Consolidation) ServersUsed() int { return c.Plan.ServersUsed }

// CRequTotal returns the sum of per-server required capacities (the
// paper's ΣC_requ).
func (c *Consolidation) CRequTotal() float64 { return c.Plan.RequiredTotal }

// Consolidate places the normal-mode translated workloads onto a pool of
// identical servers (one per application to start with, as in the
// paper's consolidation exercises) and runs the genetic search. With
// Config.PartitionApps > 0 it runs the hierarchical pool-of-pools
// search instead and the returned Consolidation carries the
// decomposition in Hier.
func (f *Framework) Consolidate(ctx context.Context, t *Translation) (*Consolidation, error) {
	if t == nil || len(t.Normal) == 0 {
		return nil, errors.New("core: nothing to consolidate")
	}
	problem, err := f.problemFor(t, t.Normal)
	if err != nil {
		return nil, err
	}
	initial, err := placement.OneAppPerServer(problem)
	if err != nil {
		return nil, err
	}
	if f.cfg.PartitionApps > 0 {
		hier, err := placement.ConsolidateHierarchical(ctx, problem, initial, f.cfg.GA, f.hierConfig())
		if err != nil {
			return nil, err
		}
		return &Consolidation{Problem: problem, Plan: hier.Plan, Hier: hier}, nil
	}
	plan, err := placement.Consolidate(ctx, problem, initial, f.cfg.GA)
	if err != nil {
		return nil, err
	}
	return &Consolidation{Problem: problem, Plan: plan}, nil
}

// hierConfig assembles the hierarchical placement configuration from the
// framework's settings.
func (f *Framework) hierConfig() placement.HierConfig {
	return placement.HierConfig{
		MaxApps:  f.cfg.PartitionApps,
		Workers:  f.cfg.Workers,
		Journal:  f.cfg.Journal,
		Topology: f.cfg.Topology,
	}
}

// PartitionPreview clusters the translated fleet into the sub-pools the
// hierarchical search would solve, without running any search: one group
// of application IDs per partition, in canonical partition order. It
// requires Config.PartitionApps > 0.
func (f *Framework) PartitionPreview(ctx context.Context, t *Translation) ([][]string, error) {
	if t == nil || len(t.Normal) == 0 {
		return nil, errors.New("core: nothing to partition")
	}
	if f.cfg.PartitionApps <= 0 {
		return nil, errors.New("core: PartitionPreview needs PartitionApps > 0")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: partition preview: %w", err)
	}
	problem, err := f.problemFor(t, t.Normal)
	if err != nil {
		return nil, err
	}
	res, err := placement.SplitProblem(problem, f.hierConfig())
	if err != nil {
		return nil, err
	}
	groups := make([][]string, len(res.Groups))
	for k, g := range res.Groups {
		groups[k] = make([]string, len(g))
		for i, a := range g {
			groups[k][i] = problem.Apps[a].ID
		}
	}
	return groups, nil
}

// PlanForFailures analyzes every single-server failure of the
// consolidated configuration with the failure-mode translations.
func (f *Framework) PlanForFailures(ctx context.Context, t *Translation, c *Consolidation) (*failure.Report, error) {
	if t == nil || c == nil {
		return nil, errors.New("core: need a translation and a consolidation")
	}
	failApps := make([]placement.App, len(t.Failure))
	for i, p := range t.Failure {
		failApps[i] = partitionApp(p)
	}
	in := failure.Input{Problem: c.Problem, FailureApps: failApps, GA: f.cfg.GA, Hooks: f.cfg.Hooks, Inject: f.cfg.Inject, Workers: f.cfg.Workers, Retry: f.cfg.Retry, Journal: f.cfg.Journal}
	return failure.Analyze(ctx, in, c.Plan)
}

// PlanForMultiFailures analyzes every combination of k concurrent
// server failures of the consolidated configuration (the paper notes
// the single-failure scenario "can be extended to multiple node
// failures").
func (f *Framework) PlanForMultiFailures(ctx context.Context, t *Translation, c *Consolidation, k int) (*failure.MultiReport, error) {
	if t == nil || c == nil {
		return nil, errors.New("core: need a translation and a consolidation")
	}
	failApps := make([]placement.App, len(t.Failure))
	for i, p := range t.Failure {
		failApps[i] = partitionApp(p)
	}
	in := failure.Input{Problem: c.Problem, FailureApps: failApps, GA: f.cfg.GA, Hooks: f.cfg.Hooks, Inject: f.cfg.Inject, Workers: f.cfg.Workers, Retry: f.cfg.Retry, Journal: f.cfg.Journal}
	return failure.AnalyzeMulti(ctx, in, c.Plan, k)
}

// PlanForScenarios evaluates named failure scenarios — correlated
// domain losses, cascades, maintenance windows, typically compiled by
// the scenario DSL (internal/scenario) against a topology — on the
// consolidated configuration, pricing every outcome with econ (nil
// scores zero).
func (f *Framework) PlanForScenarios(ctx context.Context, t *Translation, c *Consolidation, specs []failure.ScenarioSpec, econ *failure.Economics) (*failure.MultiReport, error) {
	if t == nil || c == nil {
		return nil, errors.New("core: need a translation and a consolidation")
	}
	failApps := make([]placement.App, len(t.Failure))
	for i, p := range t.Failure {
		failApps[i] = partitionApp(p)
	}
	in := failure.Input{Problem: c.Problem, FailureApps: failApps, GA: f.cfg.GA, Hooks: f.cfg.Hooks, Inject: f.cfg.Inject, Workers: f.cfg.Workers, Retry: f.cfg.Retry, Journal: f.cfg.Journal}
	return failure.AnalyzeScenarios(ctx, in, c.Plan, specs, econ)
}

// Report is the full output of a capacity-management pass.
type Report struct {
	Translation   *Translation
	Consolidation *Consolidation
	Failures      *failure.Report
	// Scenarios holds the named-scenario sweep when one was requested
	// (RunScenarios); nil otherwise.
	Scenarios *failure.MultiReport
}

// Run executes the full pipeline: translate, consolidate, plan for
// failures. Cancellation degrades per stage: the consolidation returns
// its best-so-far plan (flagged Truncated) and the failure sweep its
// completed prefix (Report.Truncated), so a cancelled Run still yields
// whatever the pipeline had finished.
func (f *Framework) Run(ctx context.Context, traces trace.Set, reqs Requirements) (report *Report, err error) {
	defer robust.Recover("core.Run", &err)
	ctx, span := telemetry.StartSpanCtx(ctx, f.cfg.Hooks, "core.run",
		telemetry.Int("apps", len(traces)))
	defer span.End()
	obslog.From(ctx).InfoContext(ctx, "core.run", slog.Int("apps", len(traces)))
	t, err := f.Translate(ctx, traces, reqs)
	if err != nil {
		return nil, err
	}
	c, err := f.Consolidate(ctx, t)
	if err != nil {
		return nil, err
	}
	obslog.From(ctx).InfoContext(ctx, "core.consolidate",
		slog.Int("servers_used", c.ServersUsed()))
	fr, err := f.PlanForFailures(ctx, t, c)
	if err != nil {
		return nil, err
	}
	return &Report{Translation: t, Consolidation: c, Failures: fr}, nil
}

// RunScenarios executes the full pipeline and then sweeps the given
// named scenarios with revenue-at-risk economics: translate,
// consolidate, plan for single failures, plan for scenarios. The
// single-failure sweep stays in the report — the scenario universe
// complements it, it does not replace it.
func (f *Framework) RunScenarios(ctx context.Context, traces trace.Set, reqs Requirements, specs []failure.ScenarioSpec, econ *failure.Economics) (report *Report, err error) {
	defer robust.Recover("core.RunScenarios", &err)
	report, err = f.Run(ctx, traces, reqs)
	if err != nil {
		return nil, err
	}
	sr, err := f.PlanForScenarios(ctx, report.Translation, report.Consolidation, specs, econ)
	if err != nil {
		return nil, err
	}
	report.Scenarios = sr
	return report, nil
}

// problemFor assembles a placement problem from partitions, with one
// candidate server per application.
func (f *Framework) problemFor(t *Translation, parts []*portfolio.Partition) (*placement.Problem, error) {
	if len(parts) == 0 {
		return nil, errors.New("core: no partitions")
	}
	apps := make([]placement.App, len(parts))
	for i, p := range parts {
		apps[i] = partitionApp(p)
	}
	servers := make([]placement.Server, len(parts))
	for i := range servers {
		servers[i] = placement.Server{
			ID:          fmt.Sprintf("srv-%02d", i+1),
			CPUs:        f.cfg.ServerCPUs,
			CPUCapacity: f.cfg.ServerCapacityPerCPU,
		}
	}
	interval := t.Traces[0].Interval
	return &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    f.cfg.Commitment,
		SlotsPerDay:   t.Traces[0].SlotsPerDay(),
		DeadlineSlots: f.cfg.Commitment.DeadlineSlots(interval),
		Tolerance:     f.cfg.Tolerance,
		Score:         f.cfg.Score,
		Hooks:         f.cfg.Hooks,
		Inject:        f.cfg.Inject,
		Cache:         f.cache,
	}, nil
}

// partitionApp adapts a portfolio partition to a placement application.
func partitionApp(p *portfolio.Partition) placement.App {
	return placement.App{
		ID: p.AppID,
		Workload: sim.Workload{
			AppID: p.AppID,
			CoS1:  p.CoS1.Samples,
			CoS2:  p.CoS2.Samples,
		},
	}
}
