package experiments

import (
	"context"
	"fmt"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/resilience"
	"ropus/internal/sim"
	"ropus/internal/telemetry"
	"ropus/internal/workload"
)

// Mix is an extra experiment beyond the paper's evaluation: a fleet of
// interactive (day-peaking) and batch (night-peaking) applications is
// consolidated by every placement algorithm in the repository. The
// anti-correlation between the classes is exactly the structure the
// paper's related-work section says correlation-aware heuristics could
// exploit; the experiment quantifies how much each algorithm actually
// exploits it.

// MixRow is one algorithm's result on the mixed fleet.
type MixRow struct {
	Algorithm string
	Servers   int
	CRequ     float64
	// Feasible is false when the algorithm failed to place the fleet.
	Feasible bool
}

// MixConfig parameterizes the mixed-fleet experiment.
type MixConfig struct {
	// Interactive and Batch are the class sizes (default 6/6 when 0).
	Interactive, Batch int
	// Seed drives both fleet generation and the genetic search.
	Seed int64
	// Quick trades search quality for speed.
	Quick bool
	// Hooks receives run telemetry (nil disables it).
	Hooks telemetry.Hooks
	// Workers bounds how many algorithms run concurrently: 0 selects
	// GOMAXPROCS, 1 is sequential. Results are identical either way.
	Workers int
	// Retry re-attempts an algorithm that failed transiently; the zero
	// value makes a single attempt.
	Retry resilience.Policy
	// Journal, when non-nil, checkpoints each algorithm's completed row
	// so an interrupted comparison can resume without recomputing it.
	Journal *checkpoint.Journal
}

// Mix runs the mixed-fleet consolidation comparison.
func Mix(ctx context.Context, cfg MixConfig) ([]MixRow, error) {
	if cfg.Interactive <= 0 {
		cfg.Interactive = 6
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 6
	}
	set, err := workload.Fleet(workload.FleetConfig{
		Smooth:   cfg.Interactive,
		Batch:    cfg.Batch,
		Weeks:    2,
		Interval: 15 * time.Minute,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	theta := 0.6
	q := CaseStudyQoS(97, 30*time.Minute)
	apps := make([]placement.App, len(set))
	for i, tr := range set {
		part, err := portfolio.Translate(tr, q, theta)
		if err != nil {
			return nil, err
		}
		apps[i] = placement.App{ID: tr.AppID, Workload: sim.Workload{
			AppID: tr.AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples,
		}}
	}
	servers := make([]placement.Server, len(apps))
	for i := range servers {
		servers[i] = placement.Server{ID: fmt.Sprintf("srv-%02d", i+1), CPUs: 16, CPUCapacity: 1}
	}
	problem := &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    qos.PoolCommitment{Theta: theta, Deadline: time.Hour},
		SlotsPerDay:   set[0].SlotsPerDay(),
		DeadlineSlots: 4,
		Tolerance:     0.1,
		Hooks:         cfg.Hooks,
		Cache:         placement.NewSimCache(0),
	}

	ga := placement.DefaultGAConfig(cfg.Seed)
	if cfg.Quick {
		ga.MaxGenerations = 40
		ga.Stagnation = 10
		ga.PopulationSize = 16
		problem.Tolerance = 0.25
	}

	algos := []struct {
		name string
		fn   func(p *placement.Problem) (*placement.Plan, error)
	}{
		{"first-fit-decreasing", func(p *placement.Problem) (*placement.Plan, error) {
			return placement.FirstFitDecreasing(ctx, p)
		}},
		{"best-fit-decreasing", func(p *placement.Problem) (*placement.Plan, error) {
			return placement.BestFitDecreasing(ctx, p)
		}},
		{"least-correlated-fit", func(p *placement.Problem) (*placement.Plan, error) {
			return placement.LeastCorrelatedFit(ctx, p)
		}},
		{"genetic", func(p *placement.Problem) (*placement.Plan, error) {
			initial, err := placement.OneAppPerServer(p)
			if err != nil {
				return nil, err
			}
			return placement.Consolidate(ctx, p, initial, ga)
		}},
	}
	h := telemetry.OrNop(cfg.Hooks)
	replayC := h.Counter("experiments_cases_replayed_total")
	appendErrC := h.Counter("checkpoint_append_errors_total")
	retry := cfg.Retry
	if retry.Hooks == nil {
		retry.Hooks = cfg.Hooks
	}

	// An algorithm that errors (or is never dispatched after a cancel)
	// reports just its name, as the sequential code did.
	rows := make([]MixRow, len(algos))
	for i := range rows {
		rows[i].Algorithm = algos[i].name
	}
	parallel.ForEach(ctx, cfg.Workers, len(algos), func(i int) {
		key := checkpoint.NewHasher().String(algos[i].name).Sum()
		var cached MixRow
		if ok, cerr := cfg.Journal.Lookup(unitMix, key, &cached); cerr == nil && ok {
			rows[i] = cached
			replayC.Inc()
			return
		}
		row, _, err := resilience.Do(ctx, retry, algos[i].name,
			func(context.Context) (MixRow, error) {
				// Each algorithm gets its own shallow Problem copy: Validate
				// memoizes the attribute union on the struct, which would
				// race. The copies still share the one simulation cache, so
				// every (server, group) any algorithm solves is solved once.
				p := *problem
				plan, err := algos[i].fn(&p)
				if err != nil {
					return MixRow{Algorithm: algos[i].name}, err
				}
				return MixRow{
					Algorithm: algos[i].name,
					Servers:   plan.ServersUsed,
					CRequ:     plan.RequiredTotal,
					Feasible:  plan.Feasible,
				}, nil
			})
		if err != nil {
			return
		}
		rows[i] = row
		// Never checkpoint a row computed under cancellation: its search
		// may have been cut short.
		if ctx.Err() == nil {
			if aerr := cfg.Journal.Append(unitMix, key, row); aerr != nil {
				appendErrC.Inc()
			}
		}
	})
	return rows, nil
}
