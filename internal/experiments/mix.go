package experiments

import (
	"context"
	"fmt"
	"time"

	"ropus/internal/placement"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/sim"
	"ropus/internal/telemetry"
	"ropus/internal/workload"
)

// Mix is an extra experiment beyond the paper's evaluation: a fleet of
// interactive (day-peaking) and batch (night-peaking) applications is
// consolidated by every placement algorithm in the repository. The
// anti-correlation between the classes is exactly the structure the
// paper's related-work section says correlation-aware heuristics could
// exploit; the experiment quantifies how much each algorithm actually
// exploits it.

// MixRow is one algorithm's result on the mixed fleet.
type MixRow struct {
	Algorithm string
	Servers   int
	CRequ     float64
	// Feasible is false when the algorithm failed to place the fleet.
	Feasible bool
}

// MixConfig parameterizes the mixed-fleet experiment.
type MixConfig struct {
	// Interactive and Batch are the class sizes (default 6/6 when 0).
	Interactive, Batch int
	// Seed drives both fleet generation and the genetic search.
	Seed int64
	// Quick trades search quality for speed.
	Quick bool
	// Hooks receives run telemetry (nil disables it).
	Hooks telemetry.Hooks
}

// Mix runs the mixed-fleet consolidation comparison.
func Mix(ctx context.Context, cfg MixConfig) ([]MixRow, error) {
	if cfg.Interactive <= 0 {
		cfg.Interactive = 6
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 6
	}
	set, err := workload.Fleet(workload.FleetConfig{
		Smooth:   cfg.Interactive,
		Batch:    cfg.Batch,
		Weeks:    2,
		Interval: 15 * time.Minute,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	theta := 0.6
	q := CaseStudyQoS(97, 30*time.Minute)
	apps := make([]placement.App, len(set))
	for i, tr := range set {
		part, err := portfolio.Translate(tr, q, theta)
		if err != nil {
			return nil, err
		}
		apps[i] = placement.App{ID: tr.AppID, Workload: sim.Workload{
			AppID: tr.AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples,
		}}
	}
	servers := make([]placement.Server, len(apps))
	for i := range servers {
		servers[i] = placement.Server{ID: fmt.Sprintf("srv-%02d", i+1), CPUs: 16, CPUCapacity: 1}
	}
	problem := &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    qos.PoolCommitment{Theta: theta, Deadline: time.Hour},
		SlotsPerDay:   set[0].SlotsPerDay(),
		DeadlineSlots: 4,
		Tolerance:     0.1,
		Hooks:         cfg.Hooks,
	}

	ga := placement.DefaultGAConfig(cfg.Seed)
	if cfg.Quick {
		ga.MaxGenerations = 40
		ga.Stagnation = 10
		ga.PopulationSize = 16
		problem.Tolerance = 0.25
	}

	rows := make([]MixRow, 0, 4)
	run := func(name string, fn func() (*placement.Plan, error)) {
		plan, err := fn()
		if err != nil {
			rows = append(rows, MixRow{Algorithm: name})
			return
		}
		rows = append(rows, MixRow{
			Algorithm: name,
			Servers:   plan.ServersUsed,
			CRequ:     plan.RequiredTotal,
			Feasible:  plan.Feasible,
		})
	}
	run("first-fit-decreasing", func() (*placement.Plan, error) {
		return placement.FirstFitDecreasing(ctx, problem)
	})
	run("best-fit-decreasing", func() (*placement.Plan, error) {
		return placement.BestFitDecreasing(ctx, problem)
	})
	run("least-correlated-fit", func() (*placement.Plan, error) {
		return placement.LeastCorrelatedFit(ctx, problem)
	})
	run("genetic", func() (*placement.Plan, error) {
		initial, err := placement.OneAppPerServer(problem)
		if err != nil {
			return nil, err
		}
		return placement.Consolidate(ctx, problem, initial, ga)
	})
	return rows, nil
}
