package experiments

import (
	"context"
	"math"
	"testing"
	"time"

	"ropus/internal/trace"
	"ropus/internal/workload"
)

// smallFleet keeps consolidation-based tests fast: 6 apps, 1 week of
// hourly samples.
func smallFleet(t *testing.T) trace.Set {
	t.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 2, Smooth: 3,
		Weeks: 1, Interval: time.Hour, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestFig3Shape(t *testing.T) {
	rows, err := Fig3(0.5, 0.66)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d rows", len(rows))
	}
	ratio := 0.5 / 0.66
	prevP := math.Inf(1)
	for _, r := range rows {
		if r.Breakpoint < 0 || r.Breakpoint > 1 {
			t.Fatalf("breakpoint %v outside [0,1] at theta %v", r.Breakpoint, r.Theta)
		}
		if r.Breakpoint > prevP+1e-12 {
			t.Fatalf("breakpoint not non-increasing at theta %v", r.Theta)
		}
		prevP = r.Breakpoint
		if r.Theta >= ratio && r.Breakpoint != 0 {
			t.Fatalf("breakpoint %v should be 0 at theta %v >= Ulow/Uhigh", r.Breakpoint, r.Theta)
		}
		if r.MaxAllocTrend > 1+1e-12 {
			t.Fatalf("trend %v above normalization at theta %v", r.MaxAllocTrend, r.Theta)
		}
	}
	// The paper's 20% claim: trend(0.95)/trend(0.6) ~ 0.797.
	var t95, t60 float64
	for _, r := range rows {
		if math.Abs(r.Theta-0.95) < 1e-9 {
			t95 = r.MaxAllocTrend
		}
		if math.Abs(r.Theta-0.60) < 1e-9 {
			t60 = r.MaxAllocTrend
		}
	}
	if t95 == 0 || t60 == 0 {
		t.Fatal("sweep missing theta 0.95 or 0.60")
	}
	if got := t95 / t60; got < 0.78 || got > 0.82 {
		t.Errorf("trend ratio = %v, want ~0.797", got)
	}

	if _, err := Fig3(0, 0.66); err == nil {
		t.Error("invalid Ulow accepted")
	}
}

func TestFig6SortedAndBounded(t *testing.T) {
	set := smallFleet(t)
	rows, err := Fig6(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(set) {
		t.Fatalf("%d rows for %d apps", len(rows), len(set))
	}
	last := len(Fig6Levels) - 1
	prev := -1.0
	for _, r := range rows {
		if len(r.Percentiles) != len(Fig6Levels) {
			t.Fatalf("row %s has %d percentiles", r.AppID, len(r.Percentiles))
		}
		for j := 1; j < len(r.Percentiles); j++ {
			if r.Percentiles[j] > r.Percentiles[j-1]+1e-9 {
				t.Errorf("%s: percentile levels not decreasing: %v", r.AppID, r.Percentiles)
			}
		}
		if r.Percentiles[0] > 100+1e-9 || r.Percentiles[last] < 0 {
			t.Errorf("%s: percentiles outside [0,100]: %v", r.AppID, r.Percentiles)
		}
		if r.Percentiles[last] < prev-1e-9 {
			t.Error("rows not ordered burstiest-first")
		}
		prev = r.Percentiles[last]
	}
	if _, err := Fig6(trace.Set{}); err == nil {
		t.Error("empty set accepted")
	}
}

func TestFig7Bounds(t *testing.T) {
	set := smallFleet(t)
	rows, err := Fig7(set, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	bound := (1 - 0.66/0.9) * 100
	for _, r := range rows {
		if len(r.Values) != len(TDegrSweep) {
			t.Fatalf("%s: %d values", r.AppID, len(r.Values))
		}
		for j, v := range r.Values {
			if v < -1e-9 || v > bound+1e-9 {
				t.Errorf("%s: reduction %v outside [0, %.2f]", r.AppID, v, bound)
			}
			// Tighter Tdegr can only lower the reduction.
			if j > 0 && v > r.Values[j-1]+1e-9 {
				t.Errorf("%s: reduction increased under tighter Tdegr: %v", r.AppID, r.Values)
			}
		}
	}
}

func TestFig8Bounds(t *testing.T) {
	set := smallFleet(t)
	for _, theta := range []float64{0.6, 0.95} {
		rows, err := Fig8(set, theta)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			for j, v := range r.Values {
				if v < 0 || v > 3+1e-9 {
					t.Errorf("theta=%v %s: degraded %v%% outside [0,3]", theta, r.AppID, v)
				}
				if j > 0 && v > r.Values[j-1]+1e-9 {
					t.Errorf("theta=%v %s: degraded%% increased under tighter Tdegr: %v",
						theta, r.AppID, r.Values)
				}
			}
		}
	}
}

func TestFig8ThetaOrdering(t *testing.T) {
	// At the same cap, higher theta leaves more headroom before
	// degradation: per-app degraded fraction at 0.95 <= at 0.60 for the
	// Tdegr=none column.
	set := smallFleet(t)
	hi, err := Fig8(set, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Fig8(set, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hi {
		if hi[i].Values[0] > lo[i].Values[0]+1e-9 {
			t.Errorf("%s: degraded%% at theta 0.95 (%v) above theta 0.6 (%v)",
				hi[i].AppID, hi[i].Values[0], lo[i].Values[0])
		}
	}
}

func TestTable1SmallFleet(t *testing.T) {
	set := smallFleet(t)
	rows, err := Table1(context.Background(), set, Table1Config{GASeed: 9, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table1Cases) {
		t.Fatalf("%d rows, want %d", len(rows), len(Table1Cases))
	}
	byID := make(map[int]Table1Row, len(rows))
	for _, r := range rows {
		byID[r.Case.ID] = r
		if r.Servers < 1 {
			t.Errorf("case %d: %d servers", r.Case.ID, r.Servers)
		}
		if r.CRequ <= 0 || r.CPeak <= 0 {
			t.Errorf("case %d: CRequ=%v CPeak=%v", r.Case.ID, r.CRequ, r.CPeak)
		}
		if r.CRequ > r.CPeak+1e-6 {
			t.Errorf("case %d: CRequ %v above CPeak %v", r.Case.ID, r.CRequ, r.CPeak)
		}
	}
	// Shape: Mdegr=0 cases share CPeak; Mdegr=3 reduces it.
	if byID[1].CPeak != byID[4].CPeak {
		t.Errorf("cases 1 and 4 must share CPeak: %v vs %v", byID[1].CPeak, byID[4].CPeak)
	}
	if byID[3].CPeak >= byID[1].CPeak {
		t.Errorf("Mdegr=3%% should reduce CPeak: %v vs %v", byID[3].CPeak, byID[1].CPeak)
	}
	// Tdegr=none caps are theta-independent: cases 3 and 6 share CPeak.
	if math.Abs(byID[3].CPeak-byID[6].CPeak) > 1e-6 {
		t.Errorf("cases 3 and 6 must share CPeak: %v vs %v", byID[3].CPeak, byID[6].CPeak)
	}
}

func TestFailoverSmallFleet(t *testing.T) {
	set := smallFleet(t)
	res, err := Failover(context.Background(), set, Table1Config{GASeed: 9, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormalServers < 1 {
		t.Errorf("NormalServers = %d", res.NormalServers)
	}
	if res.Report == nil || res.Report.Failures == nil {
		t.Fatal("missing failure report")
	}
	if got := len(res.Report.Failures.Scenarios); got != res.NormalServers {
		t.Errorf("%d scenarios for %d servers", got, res.NormalServers)
	}
}

func TestMixComparesAllAlgorithms(t *testing.T) {
	rows, err := Mix(context.Background(), MixConfig{Interactive: 2, Batch: 2, Seed: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 algorithms", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Algorithm] = true
		if !r.Feasible {
			t.Errorf("%s produced no feasible plan", r.Algorithm)
			continue
		}
		if r.Servers < 1 || r.CRequ <= 0 {
			t.Errorf("%s: servers=%d CRequ=%v", r.Algorithm, r.Servers, r.CRequ)
		}
	}
	for _, want := range []string{"first-fit-decreasing", "best-fit-decreasing", "least-correlated-fit", "genetic"} {
		if !names[want] {
			t.Errorf("missing algorithm %s", want)
		}
	}
}

func TestFleetMatchesCaseStudyConfig(t *testing.T) {
	set, err := Fleet(2006)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 26 {
		t.Errorf("fleet size %d, want 26", len(set))
	}
	if set[0].Len() != 4*7*288 {
		t.Errorf("trace length %d, want 4 weeks of 5-minute samples", set[0].Len())
	}
}

func TestCaseStudyQoS(t *testing.T) {
	q := CaseStudyQoS(97, 30*time.Minute)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.ULow != 0.5 || q.UHigh != 0.66 || q.UDegr != 0.9 {
		t.Errorf("unexpected case-study QoS: %+v", q)
	}
}
