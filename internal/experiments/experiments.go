// Package experiments regenerates every table and figure of the paper's
// evaluation (section VII) from the synthetic case-study fleet. The
// cmd/experiments binary renders the results as CSV and text tables;
// the repository's top-level benchmarks time the same computations.
//
// The experiments are:
//
//	Fig3     breakpoint p and max-allocation trend vs θ
//	Fig6     top percentiles of normalized CPU demand per application
//	Fig7     MaxCapReduction per application vs Tdegr, at θ=0.95 / 0.6
//	Fig8     % degraded measurements per application, same sweep
//	Table1   the six-case consolidation study
//	Failover the section VI-C spare-server analysis
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/core"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/resilience"
	"ropus/internal/telemetry"
	"ropus/internal/trace"
	"ropus/internal/workload"
)

// Checkpoint-journal units for resumable experiment sweeps.
const (
	unitTable1 = "experiments.table1"
	unitMix    = "experiments.mix"
)

// TraceSet aliases trace.Set for the cmd/experiments binary.
type TraceSet = trace.Set

// CaseStudyQoS is the paper's case-study application QoS requirement
// before degradation budgets: Ulow=0.5, Uhigh=0.66, Udegr=0.9.
func CaseStudyQoS(mPercent float64, tdegr time.Duration) qos.AppQoS {
	return qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: mPercent, TDegr: tdegr}
}

// Fleet generates the case-study fleet for the given seed.
func Fleet(seed int64) (trace.Set, error) {
	return workload.Fleet(workload.CaseStudyConfig(seed))
}

// ---------------------------------------------------------------------
// Figure 3: sensitivity of breakpoint and max allocation to θ.

// Fig3Row is one point of Figure 3.
type Fig3Row struct {
	Theta float64
	// Breakpoint is p from formula 1.
	Breakpoint float64
	// MaxAllocTrend is the normalized maximum allocation under a
	// time-limited degradation constraint (normalized to 1 at θ=0.5).
	MaxAllocTrend float64
}

// Fig3 evaluates the Figure 3 curves for θ in [0.5, 1.0].
func Fig3(uLow, uHigh float64) ([]Fig3Row, error) {
	var rows []Fig3Row
	base, err := portfolio.MaxAllocationTrend(uLow, uHigh, 0.5)
	if err != nil {
		return nil, err
	}
	for theta := 0.50; theta <= 1.0+1e-9; theta += 0.025 {
		t := theta
		if t > 1 {
			t = 1
		}
		p, err := portfolio.Breakpoint(uLow, uHigh, t)
		if err != nil {
			return nil, err
		}
		trend, err := portfolio.MaxAllocationTrend(uLow, uHigh, t)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{Theta: t, Breakpoint: p, MaxAllocTrend: trend / base})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figure 6: top percentiles of CPU demand per application.

// Fig6Levels are the percentile curves the paper plots.
var Fig6Levels = []float64{99.9, 99.5, 99, 98, 97}

// Fig6Row holds one application's normalized top percentiles (percent of
// its peak demand), aligned with Fig6Levels.
type Fig6Row struct {
	AppID       string
	Percentiles []float64
}

// Fig6 computes the percentile profile for every application, ordered as
// in the paper: burstiest first (smallest P97/peak ratio).
func Fig6(set trace.Set) ([]Fig6Row, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(set))
	for i, tr := range set {
		peak := tr.Peak()
		row := Fig6Row{AppID: tr.AppID, Percentiles: make([]float64, len(Fig6Levels))}
		for j, lvl := range Fig6Levels {
			v, err := tr.Percentile(lvl)
			if err != nil {
				return nil, err
			}
			if peak > 0 {
				row.Percentiles[j] = v / peak * 100
			}
		}
		rows[i] = row
	}
	sort.SliceStable(rows, func(i, j int) bool {
		last := len(Fig6Levels) - 1
		return rows[i].Percentiles[last] < rows[j].Percentiles[last]
	})
	return rows, nil
}

// ---------------------------------------------------------------------
// Figures 7 and 8: per-application effect of Mdegr / Tdegr / θ.

// TDegrSweep is the paper's Tdegr sweep: none, 2h, 1h, 30 minutes.
var TDegrSweep = []time.Duration{0, 2 * time.Hour, time.Hour, 30 * time.Minute}

// SweepRow holds one application's metric across the Tdegr sweep,
// aligned with TDegrSweep.
type SweepRow struct {
	AppID  string
	Values []float64
}

// Fig7 computes MaxCapReduction (percent) per application for each Tdegr
// at the given θ, with Mdegr = 3%.
func Fig7(set trace.Set, theta float64) ([]SweepRow, error) {
	return sweep(set, theta, func(p *portfolio.Partition, tr *trace.Trace) float64 {
		return p.MaxCapReduction() * 100
	})
}

// Fig8 computes the percentage of measurements with degraded worst-case
// performance per application for each Tdegr at the given θ.
func Fig8(set trace.Set, theta float64) ([]SweepRow, error) {
	return sweep(set, theta, func(p *portfolio.Partition, tr *trace.Trace) float64 {
		return p.DegradedFraction(tr) * 100
	})
}

func sweep(set trace.Set, theta float64, metric func(*portfolio.Partition, *trace.Trace) float64) ([]SweepRow, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	rows := make([]SweepRow, len(set))
	for i, tr := range set {
		row := SweepRow{AppID: tr.AppID, Values: make([]float64, len(TDegrSweep))}
		for j, tdegr := range TDegrSweep {
			part, err := portfolio.Translate(tr, CaseStudyQoS(97, tdegr), theta)
			if err != nil {
				return nil, fmt.Errorf("experiments: translate %s: %w", tr.AppID, err)
			}
			row.Values[j] = metric(part, tr)
		}
		rows[i] = row
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table I: the six-case consolidation study.

// Table1Case identifies one row of Table I.
type Table1Case struct {
	ID    int
	MDegr float64 // percent of measurements allowed to degrade
	Theta float64
	TDegr time.Duration
}

// Table1Cases are the paper's six cases.
var Table1Cases = []Table1Case{
	{ID: 1, MDegr: 0, Theta: 0.60, TDegr: 0},
	{ID: 2, MDegr: 3, Theta: 0.60, TDegr: 30 * time.Minute},
	{ID: 3, MDegr: 3, Theta: 0.60, TDegr: 0},
	{ID: 4, MDegr: 0, Theta: 0.95, TDegr: 0},
	{ID: 5, MDegr: 3, Theta: 0.95, TDegr: 30 * time.Minute},
	{ID: 6, MDegr: 3, Theta: 0.95, TDegr: 0},
}

// Table1Row is one evaluated case.
type Table1Row struct {
	Case Table1Case
	// Servers is the number of 16-way servers the placement service
	// reports as needed.
	Servers int
	// CRequ is the sum of per-server required capacities.
	CRequ float64
	// CPeak is the sum of per-application peak allocations.
	CPeak float64
}

// Table1Config tunes the consolidation runs.
type Table1Config struct {
	// GASeed seeds the genetic search.
	GASeed int64
	// Quick trades search quality for speed (used by benchmarks).
	Quick bool
	// Islands runs each consolidation's genetic search as this many
	// deterministic islands (placement.GAConfig.Islands); 0 or 1 keeps
	// the classic single-population search. Results are deterministic
	// per (GASeed, Islands) at any worker count, but differ between
	// island counts.
	Islands int
	// Hooks receives run telemetry (nil disables it).
	Hooks telemetry.Hooks
	// Workers bounds how many cases (and, inside each framework, failure
	// scenarios) run concurrently: 0 selects GOMAXPROCS, 1 is sequential.
	// Results are identical at every worker count.
	Workers int
	// Retry re-attempts a case (or, inside Failover's framework, a
	// failure scenario) that failed transiently. The zero value makes a
	// single attempt.
	Retry resilience.Policy
	// Journal, when non-nil, checkpoints completed cases (and the
	// failure scenarios Failover sweeps) so an interrupted run can
	// resume without recomputing them; replay is bit-exact.
	Journal *checkpoint.Journal
	// PartitionApps, when > 0, consolidates each case with the
	// hierarchical pool-of-pools search capped at this many applications
	// per sub-pool (core.Config.PartitionApps); 0 keeps the flat search.
	// Results are deterministic per (GASeed, Islands, PartitionApps) but
	// differ between partition caps.
	PartitionApps int
}

// Table1 runs the six consolidation cases against the fleet.
func Table1(ctx context.Context, set trace.Set, cfg Table1Config) ([]Table1Row, error) {
	h := telemetry.OrNop(cfg.Hooks)
	replayC := h.Counter("experiments_cases_replayed_total")
	appendErrC := h.Counter("checkpoint_append_errors_total")
	retry := cfg.Retry
	if retry.Hooks == nil {
		retry.Hooks = cfg.Hooks
	}

	rows := make([]Table1Row, len(Table1Cases))
	errs := make([]error, len(Table1Cases))
	var failed atomic.Bool
	runCase := func(actx context.Context, i int) (Table1Row, error) {
		c := Table1Cases[i]
		f, err := frameworkFor(c.Theta, cfg)
		if err != nil {
			return Table1Row{}, err
		}
		q := CaseStudyQoS(100-c.MDegr, c.TDegr)
		reqs := core.Requirements{Default: qos.Requirement{Normal: q, Failure: q}}
		tr, err := f.Translate(actx, set, reqs)
		if err != nil {
			return Table1Row{}, fmt.Errorf("experiments: case %d: %w", c.ID, err)
		}
		cons, err := f.Consolidate(actx, tr)
		if err != nil {
			return Table1Row{}, fmt.Errorf("experiments: case %d: %w", c.ID, err)
		}
		if cons.Plan != nil && cons.Plan.Truncated && actx.Err() != nil && ctx.Err() == nil {
			return Table1Row{}, resilience.MarkTransient(
				fmt.Errorf("experiments: case %d: attempt deadline cut the search short", c.ID))
		}
		return Table1Row{
			Case:    c,
			Servers: cons.ServersUsed(),
			CRequ:   cons.CRequTotal(),
			CPeak:   tr.CPeakTotal(),
		}, nil
	}
	done := parallel.ForEach(ctx, cfg.Workers, len(Table1Cases), func(i int) {
		if failed.Load() {
			return // a case already failed; don't burn cycles on the rest
		}
		key := checkpoint.NewHasher().Int(int64(Table1Cases[i].ID)).Sum()
		var cached Table1Row
		if ok, cerr := cfg.Journal.Lookup(unitTable1, key, &cached); cerr == nil && ok {
			rows[i] = cached
			replayC.Inc()
			return
		}
		row, _, err := resilience.Do(ctx, retry, fmt.Sprintf("case-%d", Table1Cases[i].ID),
			func(attemptCtx context.Context) (Table1Row, error) {
				return runCase(attemptCtx, i)
			})
		if err == nil {
			rows[i] = row
			// Never checkpoint a case computed under cancellation: its
			// search may have been cut short.
			if ctx.Err() == nil {
				if aerr := cfg.Journal.Append(unitTable1, key, row); aerr != nil {
					appendErrC.Inc()
				}
			}
			return
		}
		errs[i] = err
		failed.Store(true)
	})
	// The first error by case index is the one a sequential run would
	// have returned.
	for i := 0; i < done; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	if done < len(Table1Cases) {
		return nil, fmt.Errorf("experiments: table 1: %w", ctx.Err())
	}
	return rows, nil
}

// frameworkFor builds the case-study framework for a θ commitment.
func frameworkFor(theta float64, cfg Table1Config) (*core.Framework, error) {
	ga := placement.DefaultGAConfig(cfg.GASeed)
	ga.Islands = cfg.Islands
	tolerance := 0.1
	if cfg.Quick {
		ga.MaxGenerations = 40
		ga.Stagnation = 10
		ga.PopulationSize = 16
		tolerance = 0.25
	}
	return core.New(core.Config{
		Commitment:           qos.PoolCommitment{Theta: theta, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ga,
		Tolerance:            tolerance,
		Hooks:                cfg.Hooks,
		Workers:              cfg.Workers,
		Retry:                cfg.Retry,
		Journal:              cfg.Journal,
		PartitionApps:        cfg.PartitionApps,
	})
}

// ---------------------------------------------------------------------
// Section VI-C: failure planning.

// FailoverResult is the spare-server analysis of section VI-C: normal
// mode runs under the case 1 constraints; failed applications fall back
// to the case 2 constraints.
type FailoverResult struct {
	// NormalServers is the number of servers used in normal mode.
	NormalServers int
	// Report is the core framework's failure report.
	Report *core.Report
}

// Failover runs the full pipeline with case-1 normal QoS and case-2
// failure QoS and reports whether a spare server is needed.
func Failover(ctx context.Context, set trace.Set, cfg Table1Config) (*FailoverResult, error) {
	f, err := frameworkFor(0.60, cfg)
	if err != nil {
		return nil, err
	}
	reqs := core.Requirements{Default: qos.Requirement{
		Normal:  CaseStudyQoS(100, 0),
		Failure: CaseStudyQoS(97, 30*time.Minute),
	}}
	report, err := f.Run(ctx, set, reqs)
	if err != nil {
		return nil, err
	}
	return &FailoverResult{
		NormalServers: report.Consolidation.ServersUsed(),
		Report:        report,
	}, nil
}
