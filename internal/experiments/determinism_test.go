package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// The experiments matrices ride the same worker pool as the failure
// sweeps and inherit its contract: for a fixed seed the output is
// byte-identical at every worker count. Run under -race (the CI race
// job does) to double as the concurrency-safety check.

func marshalJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTable1ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("six Quick consolidations per worker count")
	}
	set := smallFleet(t)
	var want []byte
	for _, workers := range []int{1, 4} {
		rows, err := Table1(context.Background(), set, Table1Config{GASeed: 7, Quick: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := marshalJSON(t, rows)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: Table1 diverges from the sequential run", workers)
		}
	}
}

func TestMixParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("four Quick placements per worker count")
	}
	var want []byte
	for _, workers := range []int{1, 4} {
		rows, err := Mix(context.Background(), MixConfig{Interactive: 2, Batch: 2, Seed: 7, Quick: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := marshalJSON(t, rows)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: Mix diverges from the sequential run", workers)
		}
	}
}

func TestMixCancelledReportsNames(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Mix(ctx, MixConfig{Interactive: 2, Batch: 2, Seed: 7, Quick: true, Workers: 4})
	if err != nil {
		t.Fatalf("cancelled Mix should degrade, got %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("want all 4 algorithm rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Algorithm == "" {
			t.Error("row lost its algorithm name")
		}
		if r.Feasible {
			t.Errorf("%s: nothing ran, row must not claim feasibility", r.Algorithm)
		}
	}
}
