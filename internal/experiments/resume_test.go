package experiments

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/resilience"
)

// TestTable1JournalResume runs half the cases, "crashes", and resumes:
// the resumed table must be byte-identical to an uninterrupted run and
// must not recompute journaled cases.
func TestTable1JournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("several Quick consolidations")
	}
	ctx := context.Background()
	set := smallFleet(t)
	baseline, err := Table1(ctx, set, Table1Config{GASeed: 7, Quick: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalJSON(t, baseline)

	path := filepath.Join(t.TempDir(), "table1.ckpt")
	const run = uint64(0x7ab1e)

	// Interrupt after roughly half the cases by cancelling mid-sweep.
	j, err := checkpoint.Open(path, run, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	Table1(cctx, set, Table1Config{GASeed: 7, Quick: true, Workers: 2, Journal: j})
	cancel()
	j.Close()

	j2, err := checkpoint.Open(path, run, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed, err := Table1(ctx, set, Table1Config{GASeed: 7, Quick: true, Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalJSON(t, resumed); !bytes.Equal(got, want) {
		t.Error("resumed Table1 differs from the uninterrupted run")
	}
	if j2.Replayed() > 0 && j2.Written() != len(Table1Cases)-j2.Replayed() {
		t.Errorf("resume wrote %d cases with %d replayed, want %d",
			j2.Written(), j2.Replayed(), len(Table1Cases)-j2.Replayed())
	}
}

// TestMixJournalFullReplay: a journal holding every algorithm's row
// replays bit-exactly.
func TestMixJournalFullReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("four Quick placements")
	}
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "mix.ckpt")
	const run = uint64(0x317)

	j, err := checkpoint.Open(path, run, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MixConfig{Interactive: 2, Batch: 2, Seed: 7, Quick: true, Workers: 2, Journal: j}
	first, err := Mix(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := checkpoint.Open(path, run, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg.Journal = j2
	again, err := Mix(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalJSON(t, first), marshalJSON(t, again)) {
		t.Error("full replay drifted from the original rows")
	}
	if j2.Written() != 0 {
		t.Errorf("full replay recomputed %d rows", j2.Written())
	}
}

// TestTable1RetryPolicyValidated: an invalid retry policy surfaces
// through core.Config validation instead of silently misbehaving.
func TestTable1RetryPolicyValidated(t *testing.T) {
	set := smallFleet(t)
	_, err := Table1(context.Background(), set, Table1Config{
		GASeed: 7, Quick: true, Workers: 1,
		Retry: resilience.Policy{MaxAttempts: -1},
	})
	if err == nil {
		t.Fatal("negative MaxAttempts should fail validation")
	}
}
