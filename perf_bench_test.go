package ropus

// Benchmarks for the perf work on the failure sweep: scenario
// parallelism (Config.Workers), the shared cross-run simulation cache
// (Config.CacheBytes) and the allocation-free replay underneath. The
// headline comparison is the cache ablation — the same sweep with the
// cache disabled, shared, and shared-and-warm — recorded in
// BENCH_perf_parallel.json. Run with:
//
//	go test -bench=FailureSweep -benchmem -benchtime=100ms
//
// Results are identical across all variants (cached reuse is bit-exact
// and the worker pool preserves scenario order), so the benchmark also
// cross-checks the reports against the sequential baseline.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"ropus/internal/core"
	"ropus/internal/experiments"
	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/trace"
	"ropus/internal/workload"
)

// sweepBenchFleet is sized so the sweep is dominated by per-scenario
// consolidations (the paper's expensive step) but a cache=off run still
// finishes in benchmark time.
func sweepBenchFleet(b *testing.B) trace.Set {
	b.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 3, Smooth: 4,
		Weeks: 1, Interval: time.Hour, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// sweepBenchSetup builds a framework with the given sweep settings and
// runs the translation + base consolidation it needs (untimed); with a
// shared cache those stages also warm it, which is exactly the
// cross-run reuse the cache exists for.
func sweepBenchSetup(b *testing.B, workers int, cacheBytes int64) (*core.Framework, *core.Translation, *core.Consolidation) {
	b.Helper()
	ga := placement.DefaultGAConfig(42)
	ga.MaxGenerations = 40
	ga.Stagnation = 10
	ga.PopulationSize = 16
	f, err := core.New(core.Config{
		Commitment:           qos.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ga,
		Tolerance:            0.25,
		Workers:              workers,
		CacheBytes:           cacheBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := experiments.CaseStudyQoS(97, 30*time.Minute)
	reqs := core.Requirements{Default: qos.Requirement{Normal: q, Failure: q}}
	ctx := context.Background()
	tr, err := f.Translate(ctx, sweepBenchFleet(b), reqs)
	if err != nil {
		b.Fatal(err)
	}
	cons, err := f.Consolidate(ctx, tr)
	if err != nil {
		b.Fatal(err)
	}
	return f, tr, cons
}

func BenchmarkFailureSweep(b *testing.B) {
	var baseline []byte
	for _, tc := range []struct {
		name       string
		workers    int
		cacheBytes int64
	}{
		{"workers=1/cache=off", 1, -1},
		{"workers=1/cache=shared", 1, 0},
		{"workers=8/cache=shared", 8, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f, tr, cons := sweepBenchSetup(b, tc.workers, tc.cacheBytes)
			ctx := context.Background()
			var report []byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := f.PlanForFailures(ctx, tr, cons)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Scenarios) == 0 {
					b.Fatal("empty sweep")
				}
				if i == 0 {
					b.StopTimer()
					if report, err = json.Marshal(rep); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
			b.StopTimer()
			if baseline == nil {
				baseline = report
			} else if !bytes.Equal(report, baseline) {
				b.Fatal("sweep report diverges from the sequential cache-off baseline")
			}
			if s := f.CacheStats(); s.Hits+s.Misses > 0 {
				b.ReportMetric(s.HitRate(), "hit-rate")
			}
		})
	}
}
