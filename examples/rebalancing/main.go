// Rebalancing demonstrates the medium-timescale loop of the paper's
// Figure 1: the pool runs with an existing assignment, demand drifts,
// and the operator periodically re-evaluates service levels. When a
// server no longer satisfies the resource access commitments — or when
// consolidation can free a server — R-Opus proposes a new assignment
// and the container migrations that realize it, within a migration
// budget.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	// Month one: a fleet is translated and consolidated.
	traces, err := ropus.GenerateFleet(ropus.FleetConfig{
		Bursty:   2,
		Smooth:   4,
		Weeks:    2,
		Interval: time.Hour,
		Seed:     31,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
	theta := 0.6

	problem := buildProblem(traces, q, theta)
	initial, err := ropus.OneAppPerServer(problem)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ropus.ConsolidatePlacement(context.Background(), problem, initial, ropus.DefaultGAConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("month 1: %d applications consolidated onto %d servers\n",
		len(traces), plan.ServersUsed)

	// Month two: app-01's demand has grown 60%. Re-translate against
	// the fresh traces and audit the standing assignment.
	grown := traces.Clone()
	grown[0] = grown[0].Scale(1.6)
	fresh := buildProblem(grown, q, theta)

	audit, err := ropus.AuditPlacement(fresh, plan.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmonth 2 audit: feasible=%v, violations=%v\n", audit.Feasible, audit.Violations)

	cfg := ropus.RebalanceConfig{
		GA:           ropus.DefaultGAConfig(2),
		MaxMoves:     2,
		MinScoreGain: 0.5,
	}
	proposal, err := ropus.Rebalance(context.Background(), fresh, plan.Assignment, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if proposal.Keep {
		if proposal.BudgetExceeded {
			fmt.Println("rebalancer: no feasible repair exists — the pool itself is too small")
		} else {
			fmt.Println("rebalancer: current assignment is still the right one")
		}
		return
	}
	fmt.Printf("rebalancer: new plan on %d servers, %d migration(s):\n",
		proposal.Plan.ServersUsed, len(proposal.Moves))
	for _, m := range proposal.Moves {
		fmt.Printf("  move %s\n", m)
	}
	if proposal.BudgetExceeded {
		fmt.Printf("warning: proposal exceeds the %d-move budget; stage the migrations\n", cfg.MaxMoves)
	}
}

// buildProblem translates the traces and assembles a placement problem
// over 16-way servers.
func buildProblem(traces ropus.TraceSet, q ropus.AppQoS, theta float64) *ropus.PlacementProblem {
	apps := make([]ropus.PlacementApp, len(traces))
	for i, tr := range traces {
		part, err := ropus.Translate(tr, q, theta)
		if err != nil {
			log.Fatal(err)
		}
		apps[i] = ropus.PlacementApp{
			ID:       tr.AppID,
			Workload: ropus.Workload{AppID: tr.AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples},
		}
	}
	servers := make([]ropus.Server, len(apps))
	for i := range servers {
		servers[i] = ropus.Server{ID: fmt.Sprintf("srv-%02d", i+1), CPUs: 16, CPUCapacity: 1}
	}
	return &ropus.PlacementProblem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    ropus.PoolCommitment{Theta: theta, Deadline: time.Hour},
		SlotsPerDay:   traces[0].SlotsPerDay(),
		DeadlineSlots: 1,
		Tolerance:     0.1,
	}
}
