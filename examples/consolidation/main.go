// Consolidation reproduces the heart of the paper's case study (section
// VII): 26 enterprise applications with four weeks of five-minute CPU
// demand traces are consolidated onto 16-way servers, comparing a
// strict QoS requirement (every measurement acceptable) against one
// that allows 3% of measurements to degrade for at most 30 minutes at
// a time.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	traces, err := ropus.CaseStudyFleet(2006)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("case-study fleet: %d applications, %d samples each, sum of peak demands %.1f CPUs\n\n",
		len(traces), traces[0].Len(), traces.TotalPeak())

	strict := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100}
	relaxed := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}

	for _, scenario := range []struct {
		name string
		q    ropus.AppQoS
	}{
		{name: "strict QoS (Mdegr=0%)", q: strict},
		{name: "relaxed QoS (Mdegr=3%, Tdegr=30m)", q: relaxed},
	} {
		f, err := ropus.NewFramework(ropus.Config{
			Commitment:           ropus.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
			ServerCPUs:           16,
			ServerCapacityPerCPU: 1,
			GA:                   ropus.DefaultGAConfig(42),
			Tolerance:            0.1,
		})
		if err != nil {
			log.Fatal(err)
		}
		reqs := ropus.Requirements{Default: ropus.Requirement{Normal: scenario.q, Failure: scenario.q}}
		translation, err := f.Translate(context.Background(), traces, reqs)
		if err != nil {
			log.Fatal(err)
		}
		cons, err := f.Consolidate(context.Background(), translation)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", scenario.name)
		fmt.Printf("sum of per-app peak allocations: %.0f CPUs\n", translation.CPeakTotal())
		fmt.Printf("servers used: %d (16-way), sum of required capacities: %.0f CPUs\n",
			cons.ServersUsed(), cons.CRequTotal())
		savings := 1 - cons.CRequTotal()/translation.CPeakTotal()
		fmt.Printf("sharing saves %.0f%% of capacity vs dedicated peak allocations\n", savings*100)
		for s, usage := range cons.Plan.Usages {
			if len(usage.AppIDs) == 0 {
				continue
			}
			fmt.Printf("  %s: %2d apps, required %5.1f CPUs, measured theta' %.4f\n",
				cons.Problem.Servers[s].ID, len(usage.AppIDs), usage.Required, usage.Result.Theta)
		}
		fmt.Println()
	}
}
