// Quickstart: generate a small synthetic fleet, run the full R-Opus
// pipeline (QoS translation -> consolidation -> failure planning) and
// print what the framework decided.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	// A small fleet: one spiky, two bursty and three smooth
	// applications over one week of five-minute samples.
	traces, err := ropus.GenerateFleet(ropus.FleetConfig{
		Spiky:    1,
		Bursty:   2,
		Smooth:   3,
		Weeks:    1,
		Interval: ropus.DefaultInterval,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The application owners' QoS: ideal at 50% utilization of
	// allocation, acceptable up to 66%; 3% of measurements may degrade
	// to at most 90%, never for more than 30 contiguous minutes. During
	// a server failure a weaker requirement applies.
	normal := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}
	failureMode := normal
	failureMode.MPercent = 95
	failureMode.TDegr = time.Hour

	// The pool operator's commitment: CoS2 capacity is available with
	// probability 0.6, and unmet demand is satisfied within an hour.
	f, err := ropus.NewFramework(ropus.Config{
		Commitment:           ropus.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ropus.DefaultGAConfig(1),
		Tolerance:            0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := f.Run(context.Background(), traces, ropus.Requirements{
		Default: ropus.Requirement{Normal: normal, Failure: failureMode},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== QoS translation ==")
	for _, p := range report.Translation.Normal {
		fmt.Printf("%s: breakpoint p=%.3f, max allocation %.2f CPUs (peak demand %.2f, cap reduction %.1f%%)\n",
			p.AppID, p.P, p.MaxAllocation(), p.DMax, p.MaxCapReduction()*100)
	}

	cons := report.Consolidation
	fmt.Printf("\n== Consolidation ==\n%d applications -> %d server(s); required capacity %.1f CPUs vs %.1f CPUs of peak allocations\n",
		len(traces), cons.ServersUsed(), cons.CRequTotal(), report.Translation.CPeakTotal())

	fmt.Println("\n== Failure planning ==")
	for _, sc := range report.Failures.Scenarios {
		verdict := "absorbed by the remaining servers"
		if !sc.Feasible {
			verdict = "cannot be absorbed"
		}
		fmt.Printf("failure of %s (%d apps) %s\n", sc.FailedServer, len(sc.AffectedApps), verdict)
	}
	if report.Failures.SpareNeeded {
		fmt.Println("verdict: keep a spare server")
	} else {
		fmt.Println("verdict: no spare server needed")
	}
}
