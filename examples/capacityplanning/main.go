// Capacityplanning demonstrates the long-term end of the paper's
// Figure 1: deciding when the pool will need additional capacity so a
// procurement process can be initiated in time.
//
// A small fleet is projected twelve weeks ahead. The observed per-slot
// trend is extrapolated for every application, and the business has
// additionally forecast that one application will double its demand
// over the quarter. The planner re-runs the consolidation at every
// two-week step and reports when the current pool runs out.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	traces, err := ropus.GenerateFleet(ropus.FleetConfig{
		Bursty:   2,
		Smooth:   6,
		Weeks:    4,
		Interval: time.Hour, // hourly samples keep the example snappy
		Seed:     12,
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := ropus.NewFramework(ropus.Config{
		Commitment:           ropus.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ropus.DefaultGAConfig(8),
		Tolerance:            0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}
	cfg := ropus.PlannerConfig{
		Framework:    f,
		Requirements: ropus.Requirements{Default: ropus.Requirement{Normal: q, Failure: q}},
		HorizonWeeks: 12,
		StepWeeks:    2,
		// The business expects app-01 to double over the quarter.
		Growth:      map[string]float64{"app-01": 2.0},
		PoolServers: 4,
	}

	plan, err := ropus.PlanCapacity(context.Background(), cfg, traces)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pool today: %d servers in use (%.0f CPUs required, %.0f CPUs of peak allocations)\n\n",
		plan.Baseline.Servers, plan.Baseline.CRequ, plan.Baseline.CPeak)
	fmt.Printf("%8s %10s %12s %12s\n", "+weeks", "servers", "CRequ CPU", "CPeak CPU")
	for _, step := range plan.Steps {
		if !step.Feasible {
			fmt.Printf("%8d %10s %12s %12.0f\n", step.WeeksAhead, "-", "unplaceable", step.CPeak)
			continue
		}
		fmt.Printf("%8d %10d %12.0f %12.0f\n", step.WeeksAhead, step.Servers, step.CRequ, step.CPeak)
	}

	fmt.Println()
	if plan.ExhaustedAtWeeks > 0 {
		fmt.Printf("the %d-server pool is exhausted %d weeks out — start procurement\n",
			cfg.PoolServers, plan.ExhaustedAtWeeks)
		fmt.Println("(an 'unplaceable' step means some application outgrows a single")
		fmt.Println("16-way server: the pool then needs bigger servers, not just more)")
	} else {
		fmt.Printf("the %d-server pool suffices for the whole %d-week horizon\n",
			cfg.PoolServers, cfg.HorizonWeeks)
	}
}
