// Stresstest shows where the application QoS numbers come from (paper
// section III): a stress-testing exercise against a representative
// application finds the burst factors — equivalently, the utilization
// of allocation range (Ulow, Uhigh) — that deliver the responsiveness
// users need. The derived range then drives the QoS translation, and a
// workload-manager replay confirms the promise holds end to end.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	// The system under test: a request takes 100ms of service on one
	// CPU of its allocation. Users consider 200ms good and tolerate
	// 300ms.
	app := ropus.StressApplication{ServiceTime: 100 * time.Millisecond, CPUs: 1}
	targets := ropus.StressTargets{
		Ideal:      200 * time.Millisecond,
		Acceptable: 300 * time.Millisecond,
	}
	r, err := ropus.DeriveUtilizationRange(app, targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stress test: R(U) = %v/(1-U)\n", app.ServiceTime)
	fmt.Printf("  ideal target %v      -> Ulow  = %.3f (burst factor %.2f)\n",
		targets.Ideal, r.ULow, 1/r.ULow)
	fmt.Printf("  acceptable target %v -> Uhigh = %.3f (burst factor %.2f)\n\n",
		targets.Acceptable, r.UHigh, 1/r.UHigh)

	// Use the derived range in a QoS requirement and translate a
	// bursty workload against a theta=0.6 pool commitment.
	q := ropus.AppQoS{ULow: r.ULow, UHigh: r.UHigh, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}
	traces, err := ropus.GenerateFleet(ropus.FleetConfig{
		Bursty:   1,
		Weeks:    2,
		Interval: ropus.DefaultInterval,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	demand := traces[0]
	part, err := ropus.Translate(demand, q, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("translated %s: breakpoint p=%.3f, max allocation %.2f CPUs\n",
		demand.AppID, part.P, part.MaxAllocation())

	// Replay the demand through the workload-manager simulator, first
	// with ample capacity (clairvoyant allocation), then with a
	// one-slot allocation lag like a real manager.
	for _, lag := range []int{0, 1} {
		res, err := ropus.RunWorkloadManager(context.Background(), part.MaxAllocation()+1, []ropus.Container{
			{Demand: demand, Partition: part},
		}, lag)
		if err != nil {
			log.Fatal(err)
		}
		comp, err := ropus.CheckCompliance(res.Containers[0], q, demand.Interval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nworkload-manager replay (lag %d slot):\n", lag)
		fmt.Printf("  acceptable %.2f%%, degraded %.2f%%, beyond Udegr %.2f%%\n",
			comp.AcceptableFraction*100, comp.DegradedFraction*100, comp.ViolatedFraction*100)
		fmt.Printf("  max utilization of allocation %.3f, longest degraded period %v\n",
			comp.MaxUtilization, comp.LongestDegraded)
		fmt.Printf("  requirement satisfied: %v\n", comp.Satisfied)
	}
	fmt.Println("\nA lag-0 manager matches the trace-based analysis; a reactive (lag-1)")
	fmt.Println("manager can be caught out by sharp bursts — the burst factor exists to")
	fmt.Println("absorb exactly that effect.")
}
