// Failureplanning demonstrates the performability side of R-Opus
// (paper section VI-C): applications run with a strict QoS requirement
// in normal operation, but their owners accept a degraded requirement
// while a failed server awaits repair. The workload placement service
// checks whether every single-server failure can be absorbed by the
// remaining servers under the failure-mode requirement — if so, the
// pool needs no spare server.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	traces, err := ropus.CaseStudyFleet(2006)
	if err != nil {
		log.Fatal(err)
	}

	f, err := ropus.NewFramework(ropus.Config{
		Commitment:           ropus.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ropus.DefaultGAConfig(42),
		Tolerance:            0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Normal mode: no degradation allowed. Failure mode: 3% of
	// measurements may degrade, for at most 30 minutes at a time —
	// the paper's case 1 vs case 2 constraints.
	reqs := ropus.Requirements{Default: ropus.Requirement{
		Normal:  ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100},
		Failure: ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute},
	}}

	report, err := f.Run(context.Background(), traces, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("normal mode: %d applications on %d 16-way servers\n\n",
		len(traces), report.Consolidation.ServersUsed())

	for _, sc := range report.Failures.Scenarios {
		fmt.Printf("if %s fails: %d applications (%v) must move\n",
			sc.FailedServer, len(sc.AffectedApps), sc.AffectedApps)
		if sc.Feasible {
			fmt.Printf("  -> re-placed under failure-mode QoS; %d servers in use after the failure\n",
				sc.Plan.ServersUsed)
		} else {
			fmt.Println("  -> CANNOT be re-placed: a spare would be needed for this failure")
		}
	}

	fmt.Println()
	if report.Failures.SpareNeeded {
		fmt.Println("conclusion: provision a spare server (or relax the failure-mode QoS)")
	} else {
		fmt.Println("conclusion: the accepted failure-mode degradation absorbs any single failure —")
		fmt.Println("no spare server is required until the failed server is repaired")
	}

	// The paper notes the scenario extends to multiple node failures:
	// check every pair of concurrent failures too.
	multi, err := f.PlanForMultiFailures(context.Background(), report.Translation, report.Consolidation, 2)
	if err != nil {
		log.Fatal(err)
	}
	infeasible := 0
	for _, sc := range multi.Scenarios {
		if !sc.Feasible {
			infeasible++
		}
	}
	fmt.Printf("\ndouble failures: %d of %d combinations cannot be absorbed\n",
		infeasible, len(multi.Scenarios))
	if w := multi.Worst(); w != nil {
		fmt.Printf("worst combination: %v (%d applications affected)\n",
			w.FailedServers, len(w.AffectedApps))
	}
}
