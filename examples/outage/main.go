// Outage simulates a server failure in the time domain: not just "can
// the affected applications be re-placed?" (the feasibility question
// the failure planner answers) but "what do their users experience
// minute by minute between the crash and the completed migration?".
//
// Three applications run on two servers. Server 0 dies on Wednesday at
// 11:00; migration takes 30 minutes; the displaced application resumes
// on server 1 under its failure-mode QoS.
package main

import (
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	traces, err := ropus.GenerateFleet(ropus.FleetConfig{
		Smooth:   3,
		Weeks:    1,
		Interval: ropus.DefaultInterval,
		Seed:     17,
	})
	if err != nil {
		log.Fatal(err)
	}

	theta := 0.6
	normalQoS := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100}
	failQoS := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}

	apps := make([]ropus.PoolApp, len(traces))
	for i, tr := range traces {
		np, err := ropus.Translate(tr, normalQoS, theta)
		if err != nil {
			log.Fatal(err)
		}
		fp, err := ropus.Translate(tr, failQoS, theta)
		if err != nil {
			log.Fatal(err)
		}
		apps[i] = ropus.PoolApp{Demand: tr, Normal: np, Failure: fp}
	}

	// Wednesday 11:00 in slot units (five-minute slots).
	failAt := (2*24 + 11) * 12
	scenario := &ropus.PoolScenario{
		Apps:           apps,
		ServerCapacity: 16,
		Normal:         []int{0, 0, 1}, // app-01 and app-02 share server 0
		FailedServer:   0,
		FailAt:         failAt,
		MigrationDelay: 6, // 30 minutes of five-minute slots
		After:          []int{1, 1, 1},
	}
	res, err := ropus.SimulatePoolFailure(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("server 0 fails Wednesday 11:00; migration completes after %v\n\n", res.OutageDuration())
	for _, out := range res.Apps {
		role := "survivor (stayed on server 1)"
		if out.Migrated {
			role = "displaced (migrated to server 1)"
		}
		fmt.Printf("%s — %s\n", out.AppID, role)
		fmt.Printf("  slots with demand but zero capacity: %d (%v)\n",
			out.StarvedSlots, time.Duration(out.StarvedSlots)*ropus.DefaultInterval)

		// Utilization of allocation around the event.
		fmt.Print("  utilization 10:30..12:30: ")
		for s := failAt - 6; s <= failAt+18; s += 3 {
			fmt.Printf("%.2f ", out.Utilization[s])
		}
		fmt.Println()
	}
	fmt.Println("\nThe displaced applications are starved only for the migration window;")
	fmt.Println("afterwards everyone runs on the survivor within its capacity, at the")
	fmt.Println("(slightly degraded) failure-mode QoS the owners agreed to.")
}
