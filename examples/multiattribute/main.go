// Multiattribute demonstrates placement with more than one capacity
// attribute — the extension the paper sketches in sections II and VI-A
// ("demand observations for capacity attributes such as CPU, memory,
// and disk and network input-output"; required capacity is found "for
// each capacity attribute") and lists as future work for the QoS
// layer.
//
// Four applications are translated on CPU as usual; each also carries a
// memory allocation trace. CPU-wise they all fit on a single 16-way
// server, but memory makes that placement infeasible, and the
// consolidation search must discover a memory-aware packing.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ropus"
)

func main() {
	traces, err := ropus.GenerateFleet(ropus.FleetConfig{
		Smooth:   4,
		Weeks:    1,
		Interval: ropus.DefaultInterval,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Shrink the CPU demand so that CPU alone would fit all four
	// applications on one 16-way server — isolating memory as the
	// binding constraint.
	for i := range traces {
		traces[i] = traces[i].Scale(0.5)
	}

	q := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
	theta := 0.6

	// Memory demand per app: a flat working set of 20 GB plus 2 GB per
	// CPU of demand — memory tracks load loosely and does not burst.
	apps := make([]ropus.PlacementApp, len(traces))
	for i, tr := range traces {
		part, err := ropus.Translate(tr, q, theta)
		if err != nil {
			log.Fatal(err)
		}
		memCoS1 := make([]float64, tr.Len())
		memCoS2 := make([]float64, tr.Len())
		for j, d := range tr.Samples {
			memCoS1[j] = 20 + 2*d // GB; memory is precious: keep it guaranteed
		}
		apps[i] = ropus.PlacementApp{
			ID:       tr.AppID,
			Workload: ropus.Workload{AppID: tr.AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples},
			Extra: map[ropus.Attribute]ropus.Workload{
				ropus.AttrMemory: {AppID: tr.AppID, CoS1: memCoS1, CoS2: memCoS2},
			},
		}
	}

	servers := make([]ropus.Server, len(apps))
	for i := range servers {
		servers[i] = ropus.Server{
			ID:          fmt.Sprintf("srv-%02d", i+1),
			CPUs:        16,
			CPUCapacity: 1,
			Extra:       map[ropus.Attribute]float64{ropus.AttrMemory: 64}, // GB
		}
	}

	problem := &ropus.PlacementProblem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    ropus.PoolCommitment{Theta: theta, Deadline: time.Hour},
		SlotsPerDay:   traces[0].SlotsPerDay(),
		DeadlineSlots: 12,
		Tolerance:     0.1,
	}

	// First show that CPU alone would allow a single server.
	cpuOnly := &ropus.PlacementProblem{
		Apps:          stripMemory(apps),
		Servers:       servers,
		Commitment:    problem.Commitment,
		SlotsPerDay:   problem.SlotsPerDay,
		DeadlineSlots: problem.DeadlineSlots,
		Tolerance:     problem.Tolerance,
	}
	allOnOne := make(ropus.Assignment, len(apps))
	cpuPlan, err := ropus.EvaluatePlacement(cpuOnly, allOnOne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU only: all %d apps on one server -> feasible=%v (required %.1f/16 CPUs)\n",
		len(apps), cpuPlan.Feasible, cpuPlan.Usages[0].Required)

	memPlan, err := ropus.EvaluatePlacement(problem, allOnOne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with memory: same placement -> feasible=%v (memory required %.0f/64 GB)\n\n",
		memPlan.Feasible, memPlan.Usages[0].ExtraRequired[ropus.AttrMemory])

	initial, err := ropus.OneAppPerServer(problem)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ropus.ConsolidatePlacement(context.Background(), problem, initial, ropus.DefaultGAConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory-aware consolidation: %d servers\n", plan.ServersUsed)
	for s, usage := range plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		fmt.Printf("  %s: apps %v, cpu %.1f/16, memory %.0f/64 GB\n",
			servers[s].ID, usage.AppIDs, usage.Required, usage.ExtraRequired[ropus.AttrMemory])
	}
}

// stripMemory removes the extra attributes from a copy of the apps.
func stripMemory(apps []ropus.PlacementApp) []ropus.PlacementApp {
	out := make([]ropus.PlacementApp, len(apps))
	for i, a := range apps {
		out[i] = ropus.PlacementApp{ID: a.ID, Workload: a.Workload}
	}
	return out
}
