package ropus

// One benchmark per table and figure of the paper's evaluation (section
// VII), plus ablation benchmarks for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The figure/table benchmarks time exactly the computation that
// cmd/experiments uses to regenerate the artifact; custom metrics report
// the headline quantity (e.g. servers used) alongside the timing.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ropus/internal/experiments"
	"ropus/internal/placement"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/sim"
	"ropus/internal/trace"
	"ropus/internal/wlmgr"
	"ropus/internal/workload"
)

var (
	fleetOnce sync.Once
	fleetSet  trace.Set
	fleetErr  error
)

// benchFleet returns the shared case-study fleet (generated once).
func benchFleet(b *testing.B) trace.Set {
	b.Helper()
	fleetOnce.Do(func() {
		fleetSet, fleetErr = experiments.Fleet(2006)
	})
	if fleetErr != nil {
		b.Fatal(fleetErr)
	}
	return fleetSet
}

// ---------------------------------------------------------------------
// Figures and tables.

func BenchmarkFig3BreakpointSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(0.5, 0.66)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig6PercentileProfile(b *testing.B) {
	set := benchFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(set)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(set) {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig7MaxCapReduction(b *testing.B) {
	set := benchFleet(b)
	for _, theta := range []float64{0.95, 0.60} {
		theta := theta
		b.Run(thetaName(theta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig7(set, theta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8DegradedMeasurements(b *testing.B) {
	set := benchFleet(b)
	for _, theta := range []float64{0.95, 0.60} {
		theta := theta
		b.Run(thetaName(theta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig8(set, theta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func thetaName(theta float64) string {
	if theta == 0.95 {
		return "theta=0.95"
	}
	return "theta=0.60"
}

func BenchmarkTable1Consolidation(b *testing.B) {
	set := benchFleet(b)
	cfg := experiments.Table1Config{GASeed: 42, Quick: true}
	b.ResetTimer()
	servers := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(context.Background(), set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		servers = 0
		for _, r := range rows {
			servers += r.Servers
		}
	}
	b.ReportMetric(float64(servers), "servers-total")
}

// BenchmarkTable1ConsolidationIslands times the same six-case
// consolidation with the genetic search split into deterministic
// islands: the epochs of every island run in parallel, so wall time
// drops with the core count while the result stays byte-deterministic
// per (seed, island count).
func BenchmarkTable1ConsolidationIslands(b *testing.B) {
	set := benchFleet(b)
	for _, islands := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("islands=%d", islands), func(b *testing.B) {
			cfg := experiments.Table1Config{GASeed: 42, Quick: true, Islands: islands}
			servers := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table1(context.Background(), set, cfg)
				if err != nil {
					b.Fatal(err)
				}
				servers = 0
				for _, r := range rows {
					servers += r.Servers
				}
			}
			b.ReportMetric(float64(servers), "servers-total")
		})
	}
}

func BenchmarkFailoverAnalysis(b *testing.B) {
	set := benchFleet(b)
	cfg := experiments.Table1Config{GASeed: 42, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Failover(context.Background(), set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Failures == nil {
			b.Fatal("no failure report")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md section 5).

// table1Problem builds the case-1 placement problem once for the
// placement ablations.
func table1Problem(b *testing.B) *placement.Problem {
	b.Helper()
	set := benchFleet(b)
	q := experiments.CaseStudyQoS(100, 0)
	apps := make([]placement.App, len(set))
	for i, tr := range set {
		part, err := portfolio.Translate(tr, q, 0.60)
		if err != nil {
			b.Fatal(err)
		}
		apps[i] = placement.App{ID: tr.AppID, Workload: sim.Workload{
			AppID: tr.AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples,
		}}
	}
	servers := make([]placement.Server, len(set))
	for i := range servers {
		servers[i] = placement.Server{ID: set[i].AppID + "-srv", CPUs: 16, CPUCapacity: 1}
	}
	return &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    qos.PoolCommitment{Theta: 0.60, Deadline: time.Hour},
		SlotsPerDay:   288,
		DeadlineSlots: 12,
		Tolerance:     0.25,
	}
}

// BenchmarkConsolidateCtxCheck measures the cost of the per-generation
// cancellation checks in the GA hot loop: the same search run against
// context.Background() (Err is a nil-method call) and against a live
// cancellable context (Err loads shared state). The two must stay
// within noise of each other and of the pre-cancellation baseline in
// BENCH_telemetry_baseline.json.
func BenchmarkConsolidateCtxCheck(b *testing.B) {
	problem := table1Problem(b)
	run := func(b *testing.B, ctx context.Context) {
		cfg := placement.DefaultGAConfig(42)
		cfg.MaxGenerations = 60
		cfg.Stagnation = 15
		servers := 0
		for i := 0; i < b.N; i++ {
			initial, err := placement.OneAppPerServer(problem)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := placement.Consolidate(ctx, problem, initial, cfg)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	}
	b.Run("background", func(b *testing.B) { run(b, context.Background()) })
	b.Run("cancellable", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		run(b, ctx)
	})
}

// BenchmarkAblationPlacementSearch compares the genetic search (cold and
// greedy-seeded) against the greedy baselines on the case-1 problem.
// The servers-used metric is the quantity the paper's comparison is
// about.
func BenchmarkAblationPlacementSearch(b *testing.B) {
	problem := table1Problem(b)

	runGA := func(b *testing.B, warm bool) {
		cfg := placement.DefaultGAConfig(42)
		cfg.MaxGenerations = 60
		cfg.Stagnation = 15
		cfg.SeedGreedy = warm
		servers := 0
		for i := 0; i < b.N; i++ {
			initial, err := placement.OneAppPerServer(problem)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := placement.Consolidate(context.Background(), problem, initial, cfg)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	}

	b.Run("ga-cold", func(b *testing.B) { runGA(b, false) })
	b.Run("ga-greedy-seeded", func(b *testing.B) { runGA(b, true) })
	b.Run("first-fit-decreasing", func(b *testing.B) {
		servers := 0
		for i := 0; i < b.N; i++ {
			plan, err := placement.FirstFitDecreasing(context.Background(), problem)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	})
	b.Run("best-fit-decreasing", func(b *testing.B) {
		servers := 0
		for i := 0; i < b.N; i++ {
			plan, err := placement.BestFitDecreasing(context.Background(), problem)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	})
	b.Run("least-correlated-fit", func(b *testing.B) {
		servers := 0
		for i := 0; i < b.N; i++ {
			plan, err := placement.LeastCorrelatedFit(context.Background(), problem)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	})
}

// BenchmarkAblationExactVsHeuristics certifies the optimum on a reduced
// 8-application instance (exact search is exponential, as the paper's
// abandoned ILP was) and reports how close each heuristic gets.
func BenchmarkAblationExactVsHeuristics(b *testing.B) {
	full := table1Problem(b)
	small := &placement.Problem{
		Apps:          full.Apps[:8],
		Servers:       full.Servers[:8],
		Commitment:    full.Commitment,
		SlotsPerDay:   full.SlotsPerDay,
		DeadlineSlots: full.DeadlineSlots,
		Tolerance:     full.Tolerance,
	}
	b.Run("exact", func(b *testing.B) {
		servers := 0
		for i := 0; i < b.N; i++ {
			plan, err := placement.Exact(context.Background(), small, 2_000_000)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	})
	b.Run("ga", func(b *testing.B) {
		cfg := placement.DefaultGAConfig(42)
		cfg.MaxGenerations = 60
		cfg.Stagnation = 15
		servers := 0
		for i := 0; i < b.N; i++ {
			initial, err := placement.OneAppPerServer(small)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := placement.Consolidate(context.Background(), small, initial, cfg)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	})
	b.Run("ffd", func(b *testing.B) {
		servers := 0
		for i := 0; i < b.N; i++ {
			plan, err := placement.FirstFitDecreasing(context.Background(), small)
			if err != nil {
				b.Fatal(err)
			}
			servers = plan.ServersUsed
		}
		b.ReportMetric(float64(servers), "servers")
	})
}

// BenchmarkAblationScoreModel compares the paper's U^(2Z) score against
// the linear ablation on the case-1 problem: same search budget, the
// servers metric shows whether the exaggerated exponent matters.
func BenchmarkAblationScoreModel(b *testing.B) {
	for _, model := range []placement.ScoreModel{placement.ScorePaper, placement.ScoreLinear} {
		model := model
		b.Run("score="+model.String(), func(b *testing.B) {
			problem := table1Problem(b)
			problem.Score = model
			cfg := placement.DefaultGAConfig(42)
			cfg.MaxGenerations = 60
			cfg.Stagnation = 15
			servers := 0
			for i := 0; i < b.N; i++ {
				initial, err := placement.OneAppPerServer(problem)
				if err != nil {
					b.Fatal(err)
				}
				plan, err := placement.Consolidate(context.Background(), problem, initial, cfg)
				if err != nil {
					b.Fatal(err)
				}
				servers = plan.ServersUsed
			}
			b.ReportMetric(float64(servers), "servers")
		})
	}
}

// BenchmarkAblationBisectionTolerance measures the required-capacity
// search cost as a function of the bisection tolerance.
func BenchmarkAblationBisectionTolerance(b *testing.B) {
	set := benchFleet(b)
	q := experiments.CaseStudyQoS(97, 0)
	workloads := make([]sim.Workload, 0, 3)
	for _, tr := range set[:3] {
		part, err := portfolio.Translate(tr, q, 0.60)
		if err != nil {
			b.Fatal(err)
		}
		workloads = append(workloads, sim.Workload{
			AppID: tr.AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples,
		})
	}
	agg, err := sim.NewAggregate(workloads)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Commitment:    qos.PoolCommitment{Theta: 0.60, Deadline: time.Hour},
		SlotsPerDay:   288,
		DeadlineSlots: 12,
	}
	for _, tol := range []float64{0.5, 0.1, 0.02} {
		tol := tol
		name := "tol=0.5"
		switch tol {
		case 0.1:
			name = "tol=0.1"
		case 0.02:
			name = "tol=0.02"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := agg.RequiredCapacity(context.Background(), cfg, 16, tol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks.

func BenchmarkFleetGeneration(b *testing.B) {
	cfg := workload.CaseStudyConfig(2006)
	for i := 0; i < b.N; i++ {
		if _, err := workload.Fleet(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPortfolioTranslate(b *testing.B) {
	set := benchFleet(b)
	q := experiments.CaseStudyQoS(97, 30*time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := set[i%len(set)]
		if _, err := portfolio.Translate(tr, q, 0.60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorReplay(b *testing.B) {
	set := benchFleet(b)
	q := experiments.CaseStudyQoS(97, 0)
	workloads := make([]sim.Workload, 0, 4)
	for _, tr := range set[:4] {
		part, err := portfolio.Translate(tr, q, 0.60)
		if err != nil {
			b.Fatal(err)
		}
		workloads = append(workloads, sim.Workload{
			AppID: tr.AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples,
		})
	}
	agg, err := sim.NewAggregate(workloads)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Capacity:      12,
		Commitment:    qos.PoolCommitment{Theta: 0.60, Deadline: time.Hour},
		SlotsPerDay:   288,
		DeadlineSlots: 12,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Replay(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadManagerReplay(b *testing.B) {
	set := benchFleet(b)
	q := experiments.CaseStudyQoS(97, 30*time.Minute)
	containers := make([]wlmgr.Container, 0, 3)
	for _, tr := range set[:3] {
		part, err := portfolio.Translate(tr, q, 0.60)
		if err != nil {
			b.Fatal(err)
		}
		containers = append(containers, wlmgr.Container{Demand: tr, Partition: part})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wlmgr.Run(context.Background(), 16, containers, 1); err != nil {
			b.Fatal(err)
		}
	}
}
