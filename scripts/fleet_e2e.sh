#!/usr/bin/env bash
# End-to-end fleet check for `ropus serve`:
#   1. three instances share one -state-dir with short lease TTLs;
#   2. cmd/loadgen drives a seeded open-loop arrival process across all
#      three, mixing tenants (loadgen itself fails on any 5xx);
#   3. one instance is `kill -9`ed mid-window — no drain, no goodbye.
#      Its leased jobs must be stolen (or its queued jobs adopted) by
#      the survivors off the shared checkpoint journals;
#   4. the run fails unless every accepted job completes and both
#      survivors agree on every job's result hash.
# The loadgen report lands at $OUT (default BENCH_serve_fleet.json).
# Needs: bash, python3, curl, $ROPUS (default ./ropus-cli) and
# $LOADGEN (default ./ropus-loadgen).
set -euo pipefail

ROPUS=${ROPUS:-./ropus-cli}
LOADGEN=${LOADGEN:-./ropus-loadgen}
OUT=${OUT:-BENCH_serve_fleet.json}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server at $1 never became healthy" >&2
  return 1
}

# Three instances, one state dir. Short lease TTL and scan interval so
# steals and adoptions land within the bench window.
FLEET_FLAGS=(-state-dir "$WORK/state" -lease-ttl 2s -scan-interval 250ms
             -tenant-weights gold=2,bronze=1 -log-format off)
"$ROPUS" serve "${FLEET_FLAGS[@]}" -instance alpha -addr 127.0.0.1:7931 &
PID_A=$!
"$ROPUS" serve "${FLEET_FLAGS[@]}" -instance beta -addr 127.0.0.1:7932 &
"$ROPUS" serve "${FLEET_FLAGS[@]}" -instance gamma -addr 127.0.0.1:7933 &
A=http://127.0.0.1:7931 B=http://127.0.0.1:7932 C=http://127.0.0.1:7933
wait_healthy "$A"; wait_healthy "$B"; wait_healthy "$C"

# Open-loop load against all three. Failover sweeps checkpoint as they
# go, which is what makes a mid-sweep kill -9 recoverable. loadgen
# exits non-zero if anything answers 5xx.
"$LOADGEN" -targets "$A,$B,$C" -duration 8s -rate 2.5 -seed 11 \
  -specs 6 -apps 24 -weeks 4 -kind failover \
  -tenants gold=2,bronze=1 -wait 6m -out "$OUT" &
LG=$!

# Hard-kill alpha the moment it is observably mid-sweep: running a job
# it owns with at least one checkpoint record journaled, so the steal
# has something to resume from. Whatever it holds leases on must be
# taken over by beta or gamma once the TTL lapses.
KILLED=
for _ in $(seq 1 200); do
  MID=$(python3 - "$A" <<'EOF'
import json, urllib.request
base = __import__("sys").argv[1]
try:
    jobs = json.load(urllib.request.urlopen(base + "/v1/jobs", timeout=2))["jobs"]
    for j in jobs:
        if j["state"] != "running" or j.get("instance") != "alpha":
            continue
        full = json.load(urllib.request.urlopen(base + "/v1/jobs/" + j["id"], timeout=2))
        if (full.get("progress") or {}).get("checkpoint_records_written_total", 0) >= 1:
            print("yes")
            break
except OSError:
    pass
EOF
)
  if [ "$MID" = yes ]; then
    kill -9 "$PID_A"
    KILLED=yes
    echo "killed alpha (pid $PID_A) mid-sweep"
    break
  fi
  sleep 0.05
done
[ "$KILLED" = yes ] || { echo "FAIL: alpha never observed mid-sweep" >&2; exit 1; }

wait "$LG" || { echo "FAIL: loadgen reported errors" >&2; exit 1; }

# Every accepted job must be done, and the survivors must agree on
# every result hash — the steal resumed the journal, not a guess.
python3 - "$OUT" "$B" "$C" <<'EOF'
import json, sys, time, urllib.request

report = json.load(open(sys.argv[1]))
assert report["errors_5xx"] == 0, f"5xx responses: {report['errors_5xx']}"
assert report["unique_jobs"] > 0, "no jobs accepted"
assert report["completed"] == report["unique_jobs"], \
    f"only {report['completed']} of {report['unique_jobs']} accepted jobs completed"
assert report["failed"] == 0, f"{report['failed']} jobs failed"

def fetch_views():
    views = []
    for base in sys.argv[2:]:
        jobs = json.load(urllib.request.urlopen(base + "/v1/jobs"))["jobs"]
        views.append({j["id"]: j for j in jobs})
    return views

# Every job finished somewhere already (loadgen waited for that); give
# each survivor's fleet scanner a few ticks to fold peer results into
# its own table before holding it to the converged view.
deadline = time.monotonic() + 30
while True:
    views = fetch_views()
    if all(j["state"] == "done" for v in views for j in v.values()):
        break
    assert time.monotonic() < deadline, "survivors never converged: " + repr(
        [{i: j["state"] for i, j in v.items() if j["state"] != "done"} for v in views])
    time.sleep(0.25)

ids = set(views[0]) | set(views[1])
assert len(ids) >= report["unique_jobs"], \
    f"survivors only know {len(ids)} of {report['unique_jobs']} jobs"
for jid in sorted(ids):
    hashes = {v[jid]["resultHash"] for v in views if jid in v}
    assert len(hashes) == 1, f"job {jid} hashes diverge across survivors: {hashes}"

# The kill was gated on alpha being mid-sweep, so its work must have
# moved: stolen off an expired lease, or adopted once the victim's
# result never materialized. Zero movement means the fleet path broke.
moved = report["steals_total"] + report["adoptions_total"]
assert moved > 0, "alpha died mid-sweep yet nothing was stolen or adopted"
print(f"fleet ok: {report['unique_jobs']} jobs done, "
      f"{report['steals_total']} stolen, {report['adoptions_total']} adopted, "
      f"shed rate {report['shed_rate']:.2f}")
EOF

kill %2 %3 2>/dev/null || true
wait 2>/dev/null || true
echo "OK: fleet survives kill -9 with byte-identical results"

# Scenario-universe failover through serve: the same scenario-file job
# run on two fresh instances at different worker counts must produce
# byte-identical ranked reports (the resultHash is the FNV hash of the
# result document).
"$ROPUS" gen -spiky 1 -bursty 1 -smooth 2 -weeks 3 -seed 9 -interval 1h \
  -o "$WORK/scen-traces.csv" \
  -topology-out "$WORK/scen-topology.json" -zones 2 -racks-per-zone 1
cat > "$WORK/scenarios.json" <<'EOF'
{
  "economics": {"defaultRevenuePerHour": 100, "defaultPenaltyPerHour": 10},
  "scenarios": [
    {"name": "zone-a-down", "kind": "domain-loss", "domain": "zone-a", "probability": 0.05},
    {"name": "cascade", "kind": "cascade", "servers": ["srv-01"], "overloadFactor": 0.5, "probability": 0.01},
    {"name": "patch-window", "kind": "maintenance", "servers": ["srv-02"], "theta": 0.4}
  ]
}
EOF
python3 - "$WORK" <<'EOF'
import json, sys
work = sys.argv[1]
spec = {
    "kind": "failover",
    "tracesCsv": open(work + "/scen-traces.csv").read(),
    "scenariosJson": open(work + "/scenarios.json").read(),
    "topologyJson": open(work + "/scen-topology.json").read(),
}
json.dump(spec, open(work + "/scen-spec.json", "w"))
EOF

scen_hash() { # scen_hash <workers> <port> <state-subdir>
  "$ROPUS" serve -state-dir "$WORK/$3" -workers "$1" \
    -addr "127.0.0.1:$2" -log-format off &
  local pid=$! base="http://127.0.0.1:$2"
  wait_healthy "$base"
  local hash
  hash=$(python3 - "$base" "$WORK/scen-spec.json" <<'EOF'
import json, sys, time, urllib.request
base, spec_path = sys.argv[1], sys.argv[2]
req = urllib.request.Request(base + "/v1/jobs", data=open(spec_path, "rb").read(),
                             headers={"Content-Type": "application/json"})
job = json.load(urllib.request.urlopen(req, timeout=10))
deadline = time.monotonic() + 300
while time.monotonic() < deadline:
    st = json.load(urllib.request.urlopen(base + "/v1/jobs/" + job["id"], timeout=10))
    if st["state"] == "done":
        names = [s["name"] for s in st["result"].get("scenarios", [])]
        assert len(names) == 3, f"ranked report has scenarios {names}, want 3"
        print(st["resultHash"])
        break
    assert st["state"] != "failed", "scenario job failed: " + st.get("error", "")
    time.sleep(0.25)
else:
    raise SystemExit("scenario job never finished")
EOF
)
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  echo "$hash"
}

H1=$(scen_hash 1 7934 scen-a)
H2=$(scen_hash 4 7935 scen-b)
[ -n "$H1" ] && [ "$H1" = "$H2" ] || {
  echo "FAIL: scenario report hashes diverge across runs: '$H1' vs '$H2'" >&2
  exit 1
}
echo "OK: scenario-file failover job hash-identical across two runs ($H1)"
