#!/usr/bin/env bash
# End-to-end drain/resume check for `ropus serve`:
#   1. an undisturbed server computes the baseline result hash;
#   2. a second server is SIGTERMed mid-sweep (best effort — if the job
#      wins the race the resume degenerates to serving the persisted
#      result, and the comparison below holds either way);
#   3. a third server on the same state dir resumes the journaled job
#      and must report the same result hash, with the job marked
#      resumed when it was genuinely interrupted.
# Needs: bash, python3, a built ropus CLI as $ROPUS (default ./ropus-cli).
set -euo pipefail

ROPUS=${ROPUS:-./ropus-cli}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$ROPUS" gen -spiky 3 -bursty 10 -smooth 16 -weeks 4 -seed 11 -o "$WORK/traces.csv"
python3 - "$WORK/traces.csv" > "$WORK/job.json" <<'EOF'
import json, sys
print(json.dumps({"kind": "failover", "tracesCsv": open(sys.argv[1]).read()}))
EOF

# api <base-url> <verb> [path [body-file]] — tiny HTTP client + JSON field extraction.
api() {
  python3 - "$@" <<'EOF'
import json, sys, urllib.request
base, verb = sys.argv[1], sys.argv[2]
if verb == "submit":
    req = urllib.request.Request(base + "/v1/jobs", data=open(sys.argv[3], "rb").read(),
                                 headers={"Content-Type": "application/json"})
    st = json.load(urllib.request.urlopen(req))
    print(st["id"])
elif verb == "field":
    st = json.load(urllib.request.urlopen(base + "/v1/jobs/" + sys.argv[3]))
    v = st
    for part in sys.argv[4].split("."):
        v = v.get(part, "") if isinstance(v, dict) else ""
    print(v)
EOF
}

# scrape_check <base-url> — pull /metrics and /v1/slo mid-run and fail
# on malformed Prometheus exposition or a bad SLO document. (The strict
# linter lives in Go — telemetry.LintPrometheusText — and runs in the
# unit tests; this guards the live endpoint shape end to end.)
scrape_check() {
  curl -fsS "$1/metrics" > "$WORK/metrics.prom"
  curl -fsS "$1/v1/slo" > "$WORK/slo.json"
  python3 - "$WORK/metrics.prom" "$WORK/slo.json" <<'EOF'
import json, re, sys
typed = set()
name_re = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*')
sample_re = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$')
n = 0
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        parts = line.split()
        assert len(parts) == 4 and parts[3] in (
            "counter", "gauge", "histogram", "summary", "untyped"), f"bad TYPE: {line}"
        typed.add(parts[2])
        continue
    if line.startswith("#"):
        continue
    m = sample_re.match(line)
    assert m, f"malformed sample: {line}"
    base = re.sub(r'_(bucket|sum|count)$', '', m.group(1))
    assert m.group(1) in typed or base in typed, f"sample without TYPE: {line}"
    n += 1
assert n > 0, "empty exposition"
slo = json.load(open(sys.argv[2]))
assert isinstance(slo.get("series"), list), f"/v1/slo missing series: {slo}"
assert isinstance(slo.get("objectives"), list), f"/v1/slo missing objectives: {slo}"
assert slo.get("window", 0) > 0, f"/v1/slo missing window: {slo}"
print(f"scrape ok: {n} samples, {len(slo['series'])} slo series")
EOF
}

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server at $1 never became healthy" >&2
  return 1
}

wait_state() { # base id state timeout_s
  for _ in $(seq 1 $((10 * $4))); do
    s=$(api "$1" field "$2" state)
    [ "$s" = "$3" ] && return 0
    [ "$s" = failed ] && { echo "job failed: $(api "$1" field "$2" error)" >&2; return 1; }
    sleep 0.1
  done
  echo "job $2 stuck (last state: $s), wanted $3" >&2
  return 1
}

# 1. Baseline: undisturbed run.
"$ROPUS" serve -state-dir "$WORK/state-base" -addr 127.0.0.1:7925 &
BASE=http://127.0.0.1:7925
wait_healthy "$BASE"
ID=$(api "$BASE" submit "$WORK/job.json")
scrape_check "$BASE"
wait_state "$BASE" "$ID" done 300
scrape_check "$BASE"
WANT=$(api "$BASE" field "$ID" resultHash)
kill -TERM %1 && wait %1
echo "baseline hash: $WANT (job $ID)"

# 2. Interrupted run: SIGTERM once the sweep has journaled progress.
"$ROPUS" serve -state-dir "$WORK/state-int" -addr 127.0.0.1:7926 &
INT=http://127.0.0.1:7926
wait_healthy "$INT"
ID2=$(api "$INT" submit "$WORK/job.json")
[ "$ID2" = "$ID" ] || { echo "same spec hashed to different job IDs: $ID vs $ID2" >&2; exit 1; }
for _ in $(seq 1 300); do
  CKPT=$(api "$INT" field "$ID" progress.checkpoint_records_written_total)
  STATE=$(api "$INT" field "$ID" state)
  { [ -n "$CKPT" ] && [ "$CKPT" != 0 ]; } || [ "$STATE" = done ] && break
  sleep 0.1
done
kill -TERM %1 && wait %1 || true
echo "interrupted after $CKPT checkpoint record(s), state was $STATE"

# 3. Restart on the same state dir: the job must finish with the
# baseline's hash.
"$ROPUS" serve -state-dir "$WORK/state-int" -addr 127.0.0.1:7926 &
wait_healthy "$INT"
wait_state "$INT" "$ID" done 300
GOT=$(api "$INT" field "$ID" resultHash)
RESUMED=$(api "$INT" field "$ID" resumed)
kill -TERM %1 && wait %1
echo "resumed hash: $GOT (resumed=$RESUMED)"

[ "$GOT" = "$WANT" ] || { echo "FAIL: resumed hash $GOT != baseline $WANT" >&2; exit 1; }
echo "OK: drain/resume byte-identical"
