package ropus_test

import (
	"fmt"
	"time"

	"ropus"
)

// The breakpoint formula (paper formula 1) splits an application's
// demand between the guaranteed and the probabilistic class of service.
func ExampleBreakpoint() {
	// Case study parameters: acceptable utilization of allocation in
	// (0.5, 0.66) against a theta = 0.6 commitment.
	p, err := ropus.Breakpoint(0.5, 0.66, 0.6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("p = %.3f\n", p)

	// With theta at or above Ulow/Uhigh all demand rides on CoS2.
	p, err = ropus.Breakpoint(0.5, 0.66, 0.95)
	if err != nil {
		panic(err)
	}
	fmt.Printf("p = %.3f\n", p)
	// Output:
	// p = 0.394
	// p = 0.000
}

// Permitting degraded performance caps the maximum allocation; formula
// 5 bounds the possible saving by Uhigh/Udegr alone.
func ExampleMaxCapReductionBound() {
	bound := ropus.MaxCapReductionBound(0.66, 0.9)
	fmt.Printf("up to %.1f%% smaller maximum allocations\n", bound*100)
	// Output:
	// up to 26.7% smaller maximum allocations
}

// Translating a demand trace yields per-CoS allocation traces whose
// worst-case utilization of allocation respects the QoS requirement.
func ExampleTranslate() {
	tr, err := ropus.NewTrace("orders", 5*time.Minute, []float64{1, 2, 4, 2, 1, 1})
	if err != nil {
		panic(err)
	}
	q := ropus.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100}
	part, err := ropus.Translate(tr, q, 0.6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("peak demand %.0f CPUs -> max allocation %.0f CPUs (p=%.3f)\n",
		part.DMax, part.MaxAllocation(), part.P)
	fmt.Printf("worst-case utilization at peak: %.2f\n",
		part.WorstCaseUtilization(part.DMax))
	// Output:
	// peak demand 4 CPUs -> max allocation 8 CPUs (p=0.394)
	// worst-case utilization at peak: 0.66
}

// The stress-test substrate turns responsiveness targets into the
// (Ulow, Uhigh) range the QoS translation needs.
func ExampleDeriveUtilizationRange() {
	r, err := ropus.DeriveUtilizationRange(
		ropus.StressApplication{ServiceTime: 100 * time.Millisecond, CPUs: 1},
		ropus.StressTargets{Ideal: 200 * time.Millisecond, Acceptable: 300 * time.Millisecond},
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Ulow=%.2f Uhigh=%.2f\n", r.ULow, r.UHigh)
	// Output:
	// Ulow=0.50 Uhigh=0.67
}
