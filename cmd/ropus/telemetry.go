package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the default mux for -pprof
	"os"
	"strings"
	"time"

	"ropus/internal/flight"
	"ropus/internal/obslog"
	"ropus/internal/robust"
	"ropus/internal/telemetry"
)

// telemetryOpts holds the observability and robustness flags shared by
// all compute subcommands: -metrics-out writes a metrics snapshot
// (Prometheus text exposition when the path ends in .prom, JSON
// otherwise), -trace-out writes a Chrome trace_event file loadable in
// Perfetto or chrome://tracing, -pprof serves net/http/pprof on the
// given address for the lifetime of the command, -timeout bounds the
// run's wall-clock time (the pipeline degrades to partial results and
// the telemetry files are still flushed), and the -log-* flags shape
// the structured log stream on stderr.
type telemetryOpts struct {
	metricsOut *string
	traceOut   *string
	pprofAddr  *string
	timeout    *time.Duration
	logFormat  *string
	logLevel   *string
	logDet     *bool

	reg       *telemetry.Registry
	tracer    *telemetry.Tracer
	logger    *slog.Logger
	flightRec *flight.Recorder
}

// telemetryFlags registers the observability flags on fs.
func telemetryFlags(fs *flag.FlagSet) *telemetryOpts {
	o := &telemetryOpts{}
	o.metricsOut = fs.String("metrics-out", "", "write a metrics snapshot to this file (.prom = Prometheus text, otherwise JSON)")
	o.traceOut = fs.String("trace-out", "", "write a Chrome trace_event JSON file to this file")
	o.pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	o.timeout = fs.Duration("timeout", 0, "cancel the run after this duration (0 = unlimited); telemetry files are still flushed")
	o.logFormat = fs.String("log-format", "json", "structured log encoding on stderr: json, text, or off")
	o.logLevel = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	o.logDet = fs.Bool("log-deterministic", false, "suppress timestamps and volatile values so fixed-seed runs log byte-identical streams")
	return o
}

// runContext derives the subcommand's context from the signal-aware
// parent, applying the -timeout flag when set.
func (o *telemetryOpts) runContext(parent context.Context) (context.Context, context.CancelFunc) {
	if *o.timeout > 0 {
		return context.WithTimeout(parent, *o.timeout)
	}
	return context.WithCancel(parent)
}

// hooks builds the telemetry sinks requested by the parsed flags and
// returns the Hooks to thread through the run. With no -metrics-out or
// -trace-out it returns nil (the no-op path for counters and spans);
// the structured logger and the flight recorder are always built
// unless -log-format=off. It also starts the pprof server when
// requested and installs the panic hook that dumps the flight recorder
// to stderr, so a crashed run leaves its last events behind.
func (o *telemetryOpts) hooks() telemetry.Hooks {
	if *o.logFormat == "off" {
		o.logger = obslog.Discard()
	} else {
		o.flightRec = flight.NewRecorder(0)
		o.logger = obslog.New(os.Stderr, obslog.Options{
			Level:         obslog.ParseLevel(*o.logLevel),
			Format:        *o.logFormat,
			Deterministic: *o.logDet,
			Recorder:      o.flightRec,
		})
	}
	if *o.metricsOut != "" || *o.traceOut != "" {
		// Both sinks are cheap; keeping them together means a -trace-out
		// run still gets span-free metrics in memory and vice versa.
		o.reg = telemetry.NewRegistry()
		o.tracer = telemetry.NewTracer()
		o.tracer.OnEnd(flight.SpanSink(o.flightRec))
	}
	if rec := o.flightRec; rec != nil {
		robust.OnPanic(func(op string, v any) {
			rec.Record("event", "panic", "", map[string]any{"op": op, "value": fmt.Sprint(v)})
			rec.WriteJSON(os.Stderr, "panic", "")
		})
	}
	if *o.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*o.pprofAddr, nil); err != nil {
				o.logger.Error("pprof.server", slog.String("error", err.Error()))
			}
		}()
		o.logger.Info("pprof.listening", slog.String("addr", *o.pprofAddr))
	}
	if o.reg == nil && o.tracer == nil {
		return nil
	}
	return telemetry.New(o.reg, o.tracer)
}

// flush writes the requested telemetry files. Call it after the
// subcommand's work, including on the error path, so partial runs still
// leave evidence behind.
func (o *telemetryOpts) flush() error {
	if *o.metricsOut != "" && o.reg != nil {
		write := o.reg.WriteJSON
		if strings.HasSuffix(*o.metricsOut, ".prom") {
			write = o.reg.WritePrometheusText
		}
		if err := writeFileWith(*o.metricsOut, write); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if *o.traceOut != "" && o.tracer != nil {
		if err := writeFileWith(*o.traceOut, o.tracer.WriteChromeTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
