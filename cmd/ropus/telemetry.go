package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registered on the default mux for -pprof
	"os"
	"time"

	"ropus/internal/telemetry"
)

// telemetryOpts holds the observability and robustness flags shared by
// all compute subcommands: -metrics-out writes a metrics-registry JSON
// snapshot, -trace-out writes a Chrome trace_event file loadable in
// Perfetto or chrome://tracing, -pprof serves net/http/pprof on the
// given address for the lifetime of the command, and -timeout bounds
// the run's wall-clock time (the pipeline degrades to partial results
// and the telemetry files are still flushed).
type telemetryOpts struct {
	metricsOut *string
	traceOut   *string
	pprofAddr  *string
	timeout    *time.Duration

	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

// telemetryFlags registers the observability flags on fs.
func telemetryFlags(fs *flag.FlagSet) *telemetryOpts {
	o := &telemetryOpts{}
	o.metricsOut = fs.String("metrics-out", "", "write a metrics JSON snapshot to this file")
	o.traceOut = fs.String("trace-out", "", "write a Chrome trace_event JSON file to this file")
	o.pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	o.timeout = fs.Duration("timeout", 0, "cancel the run after this duration (0 = unlimited); telemetry files are still flushed")
	return o
}

// runContext derives the subcommand's context from the signal-aware
// parent, applying the -timeout flag when set.
func (o *telemetryOpts) runContext(parent context.Context) (context.Context, context.CancelFunc) {
	if *o.timeout > 0 {
		return context.WithTimeout(parent, *o.timeout)
	}
	return context.WithCancel(parent)
}

// hooks builds the telemetry sinks requested by the parsed flags and
// returns the Hooks to thread through the run. With no telemetry flags
// set it returns nil (the no-op path). It also starts the pprof server
// when requested.
func (o *telemetryOpts) hooks() telemetry.Hooks {
	if *o.metricsOut != "" || *o.traceOut != "" {
		// Both sinks are cheap; keeping them together means a -trace-out
		// run still gets span-free metrics in memory and vice versa.
		o.reg = telemetry.NewRegistry()
		o.tracer = telemetry.NewTracer()
	}
	if *o.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*o.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ropus: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ropus: pprof listening on http://%s/debug/pprof/\n", *o.pprofAddr)
	}
	if o.reg == nil && o.tracer == nil {
		return nil
	}
	return telemetry.New(o.reg, o.tracer)
}

// flush writes the requested telemetry files. Call it after the
// subcommand's work, including on the error path, so partial runs still
// leave evidence behind.
func (o *telemetryOpts) flush() error {
	if *o.metricsOut != "" && o.reg != nil {
		if err := writeFileWith(*o.metricsOut, o.reg.WriteJSON); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if *o.traceOut != "" && o.tracer != nil {
		if err := writeFileWith(*o.traceOut, o.tracer.WriteChromeTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
