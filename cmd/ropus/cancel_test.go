package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCancelRopusTimeoutFlushesTelemetry(t *testing.T) {
	traces := writeFleet(t)
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	err := run([]string{"place", "-traces", traces, "-timeout", "1ns", "-metrics-out", metrics})
	if err == nil {
		t.Fatal("a timed-out run must exit non-zero")
	}
	if !strings.Contains(err.Error(), "cancel") && !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error should name the cancellation, got %v", err)
	}
	// The telemetry sidecar must still be flushed, and be valid JSON.
	data, rerr := os.ReadFile(metrics)
	if rerr != nil {
		t.Fatalf("metrics sidecar not flushed: %v", rerr)
	}
	var snapshot map[string]any
	if jerr := json.Unmarshal(data, &snapshot); jerr != nil {
		t.Fatalf("metrics sidecar is not valid JSON: %v", jerr)
	}
}

func TestCancelRopusTimeoutGenerousSucceeds(t *testing.T) {
	traces := writeFleet(t)
	if err := run([]string{"translate", "-traces", traces, "-timeout", "10m"}); err != nil {
		t.Fatalf("a generous -timeout must not break a normal run: %v", err)
	}
}
