package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ropus/internal/trace"
	"ropus/internal/workload"
)

// writeFleet writes a small fleet CSV and returns its path.
func writeFleet(t *testing.T) string {
	t.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 1, Smooth: 2,
		Weeks: 1, Interval: trace.DefaultInterval, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, set); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

func TestCmdGenToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gen.csv")
	err := run([]string{"gen", "-spiky", "1", "-bursty", "1", "-smooth", "1",
		"-weeks", "1", "-seed", "9", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Errorf("generated %d traces, want 3", len(set))
	}
}

func TestCmdGenFromProfiles(t *testing.T) {
	dir := t.TempDir()
	profilePath := filepath.Join(dir, "profiles.json")
	profileJSON := `[
	  {"id":"web","baseCpu":0.5,"peakCpu":3,"peakHour":14,"businessWidthHours":6,
	   "weekendFactor":0.3,"noiseSigma":0.1,"burstsPerWeek":0},
	  {"id":"batch","baseCpu":0.1,"peakCpu":2,"peakHour":2,"businessWidthHours":4,
	   "weekendFactor":1,"noiseSigma":0.05,"burstsPerWeek":0}
	]`
	if err := os.WriteFile(profilePath, []byte(profileJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "custom.csv")
	if err := run([]string{"gen", "-profiles", profilePath, "-weeks", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].AppID != "web" || set[1].AppID != "batch" {
		t.Errorf("generated %v", set.IDs())
	}
	if err := run([]string{"gen", "-profiles", "/does/not/exist"}); err == nil {
		t.Error("missing profile file accepted")
	}
}

func TestCmdGenInvalidConfig(t *testing.T) {
	if err := run([]string{"gen", "-weeks", "0"}); err == nil {
		t.Error("weeks=0 accepted")
	}
}

func TestCmdTranslate(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"translate", "-traces", path, "-theta", "0.6"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"translate"}); err == nil {
		t.Error("missing -traces accepted")
	}
	if err := run([]string{"translate", "-traces", "/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"translate", "-traces", path, "-theta", "0"}); err == nil {
		t.Error("theta=0 accepted")
	}
}

func TestCmdPlace(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"place", "-traces", path, "-theta", "0.6", "-cpus", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"place"}); err == nil {
		t.Error("missing -traces accepted")
	}
}

func TestCmdFailover(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"failover", "-traces", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"failover"}); err == nil {
		t.Error("missing -traces accepted")
	}
}

// writeFleetWeeks writes a fleet CSV with the given history length.
func writeFleetWeeks(t *testing.T, weeks int) string {
	t.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 1, Smooth: 2,
		Weeks: weeks, Interval: time.Hour, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, set); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdPlan(t *testing.T) {
	path := writeFleetWeeks(t, 3)
	if err := run([]string{"plan", "-traces", path, "-horizon-weeks", "2",
		"-step-weeks", "1", "-pool-servers", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"plan"}); err == nil {
		t.Error("missing -traces accepted")
	}
	short := writeFleetWeeks(t, 1)
	if err := run([]string{"plan", "-traces", short}); err == nil {
		t.Error("single-week history accepted")
	}
	if err := run([]string{"plan", "-traces", path, "-horizon-weeks", "5",
		"-step-weeks", "2"}); err == nil {
		t.Error("non-dividing step accepted")
	}
}

func TestCmdPlaceDiagnose(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"place", "-traces", path, "-diagnose"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdFailoverJSON(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"failover", "-traces", path, "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSimulate(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"simulate", "-traces", path, "-capacity", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate"}); err == nil {
		t.Error("missing -traces accepted")
	}
	if err := run([]string{"simulate", "-traces", path, "-capacity", "0"}); err == nil {
		t.Error("zero capacity accepted")
	}
}
