package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ropus/internal/checkpoint"
)

// captureStdout runs fn with os.Stdout redirected to a buffer.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	ferr := fn()
	w.Close()
	out := <-done
	return out, ferr
}

// TestCmdFailoverCheckpointResume: a journaled failover run resumed from
// its own checkpoint must print a byte-identical report.
func TestCmdFailoverCheckpointResume(t *testing.T) {
	path := writeFleet(t)
	ckpt := filepath.Join(t.TempDir(), "failover.ckpt")

	want, err := captureStdout(t, func() error {
		return run([]string{"failover", "-traces", path, "-json", "-checkpoint", ckpt})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := captureStdout(t, func() error {
		return run([]string{"failover", "-traces", path, "-json",
			"-checkpoint", ckpt, "-resume", "-workers", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed report differs from original:\n--- original\n%s\n--- resumed\n%s", want, got)
	}
}

// TestCmdFailoverResumeRequiresCheckpoint: -resume without -checkpoint
// is a usage error, not a silent no-op.
func TestCmdFailoverResumeRequiresCheckpoint(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"failover", "-traces", path, "-resume"}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
}

// TestCmdFailoverResumeRejectsOtherRun: resuming a journal recorded
// with different result-determining flags must fail with ErrRunMismatch
// instead of splicing foreign results into the report.
func TestCmdFailoverResumeRejectsOtherRun(t *testing.T) {
	path := writeFleet(t)
	ckpt := filepath.Join(t.TempDir(), "failover.ckpt")
	if _, err := captureStdout(t, func() error {
		return run([]string{"failover", "-traces", path, "-json", "-checkpoint", ckpt})
	}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"failover", "-traces", path, "-json",
		"-checkpoint", ckpt, "-resume", "-theta", "0.9"})
	if !errors.Is(err, checkpoint.ErrRunMismatch) {
		t.Errorf("resume with different theta: got %v, want ErrRunMismatch", err)
	}
}

// TestCmdPlanCheckpointResume: same byte-identity contract for the
// planner subcommand.
func TestCmdPlanCheckpointResume(t *testing.T) {
	path := writeFleetWeeks(t, 3)
	ckpt := filepath.Join(t.TempDir(), "plan.ckpt")
	args := []string{"plan", "-traces", path, "-horizon-weeks", "2",
		"-step-weeks", "1", "-checkpoint", ckpt}

	want, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	got, err := captureStdout(t, func() error { return run(append(args, "-resume")) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed plan differs from original:\n--- original\n%s\n--- resumed\n%s", want, got)
	}
}
