package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ropus/internal/checkpoint"
)

// captureStdout runs fn with os.Stdout redirected to a buffer.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	ferr := fn()
	w.Close()
	out := <-done
	return out, ferr
}

// TestCmdFailoverCheckpointResume: a journaled failover run resumed from
// its own checkpoint must print a byte-identical report.
func TestCmdFailoverCheckpointResume(t *testing.T) {
	path := writeFleet(t)
	ckpt := filepath.Join(t.TempDir(), "failover.ckpt")

	want, err := captureStdout(t, func() error {
		return run([]string{"failover", "-traces", path, "-json", "-checkpoint", ckpt})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := captureStdout(t, func() error {
		return run([]string{"failover", "-traces", path, "-json",
			"-checkpoint", ckpt, "-resume", "-workers", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed report differs from original:\n--- original\n%s\n--- resumed\n%s", want, got)
	}
}

// TestCmdFailoverResumeRequiresCheckpoint: -resume without -checkpoint
// is a usage error, not a silent no-op.
func TestCmdFailoverResumeRequiresCheckpoint(t *testing.T) {
	path := writeFleet(t)
	if err := run([]string{"failover", "-traces", path, "-resume"}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
}

// TestCmdFailoverResumeRejectsOtherRun: resuming a journal recorded
// with different result-determining flags must fail with ErrRunMismatch
// instead of splicing foreign results into the report.
func TestCmdFailoverResumeRejectsOtherRun(t *testing.T) {
	path := writeFleet(t)
	ckpt := filepath.Join(t.TempDir(), "failover.ckpt")
	if _, err := captureStdout(t, func() error {
		return run([]string{"failover", "-traces", path, "-json", "-checkpoint", ckpt})
	}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"failover", "-traces", path, "-json",
		"-checkpoint", ckpt, "-resume", "-theta", "0.9"})
	if !errors.Is(err, checkpoint.ErrRunMismatch) {
		t.Errorf("resume with different theta: got %v, want ErrRunMismatch", err)
	}
}

// TestCmdPlanCheckpointResume: same byte-identity contract for the
// planner subcommand.
func TestCmdPlanCheckpointResume(t *testing.T) {
	path := writeFleetWeeks(t, 3)
	ckpt := filepath.Join(t.TempDir(), "plan.ckpt")
	args := []string{"plan", "-traces", path, "-horizon-weeks", "2",
		"-step-weeks", "1", "-checkpoint", ckpt}

	want, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	got, err := captureStdout(t, func() error { return run(append(args, "-resume")) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed plan differs from original:\n--- original\n%s\n--- resumed\n%s", want, got)
	}
}

// TestCmdPlanInterruptedResume: a plan run cut off by -timeout journals
// the steps it completed; resuming that journal must produce output
// byte-identical to an undisturbed run, whatever prefix made it into
// the journal before the cancellation landed.
func TestCmdPlanInterruptedResume(t *testing.T) {
	path := writeFleetWeeks(t, 3)
	ckpt := filepath.Join(t.TempDir(), "plan.ckpt")
	planArgs := func(extra ...string) []string {
		return append([]string{"plan", "-traces", path, "-json",
			"-horizon-weeks", "2", "-step-weeks", "1"}, extra...)
	}

	want, err := captureStdout(t, func() error { return run(planArgs()) })
	if err != nil {
		t.Fatal(err)
	}

	// A run cancelled before it can start exits non-zero and leaves an
	// empty (but valid) journal.
	if _, err := captureStdout(t, func() error {
		return run(planArgs("-checkpoint", ckpt, "-timeout", "1ns"))
	}); err == nil {
		t.Fatal("timed-out plan run must exit non-zero")
	}

	// A second attempt races a short deadline mid-run: depending on the
	// machine it journals a partial prefix or completes. Both are legal
	// journal states — the resume contract must hold for any prefix, so
	// its exit status is deliberately not asserted.
	captureStdout(t, func() error {
		return run(planArgs("-checkpoint", ckpt, "-resume", "-timeout", "3ms"))
	})

	got, err := captureStdout(t, func() error {
		return run(planArgs("-checkpoint", ckpt, "-resume"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed interrupted plan differs from undisturbed run:\n--- undisturbed\n%s\n--- resumed\n%s", want, got)
	}
}

// TestCmdResumeRejectsCrossCommandJournal: a journal recorded by one
// subcommand must not resume another — the run-hash prefix differs, so
// the checkpoint layer rejects it instead of splicing foreign units.
func TestCmdResumeRejectsCrossCommandJournal(t *testing.T) {
	path := writeFleetWeeks(t, 3)
	ckpt := filepath.Join(t.TempDir(), "shared.ckpt")
	if _, err := captureStdout(t, func() error {
		return run([]string{"plan", "-traces", path, "-horizon-weeks", "2",
			"-step-weeks", "1", "-checkpoint", ckpt})
	}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"failover", "-traces", path, "-json",
		"-checkpoint", ckpt, "-resume"})
	if !errors.Is(err, checkpoint.ErrRunMismatch) {
		t.Errorf("failover resume of a plan journal: got %v, want ErrRunMismatch", err)
	}
}
