package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"ropus/internal/obslog"
	"ropus/internal/serve"
)

// cmdServe runs the long-lived planning service. The ctx already
// carries SIGINT/SIGTERM cancellation from run(), so a signal starts
// the graceful drain: admission flips to 503, in-flight sweeps stop at
// their next checkpoint boundary, and a server restarted on the same
// -state-dir resumes them.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	ropts := resilienceFlags(fs)
	var (
		addr     = fs.String("addr", "127.0.0.1:7925", "listen address")
		stateDir = fs.String("state-dir", "", "directory for job specs, results, checkpoint journals and leases (required; shareable across a fleet)")
		instance = fs.String("instance", "", "fleet instance identity in leases and results (empty = host-pid-seq)")
		leaseTTL = fs.Duration("lease-ttl", 0, "job-lease heartbeat budget before peers may steal (0 = 10s)")
		scanIntv = fs.Duration("scan-interval", 0, "how often the fleet scanner re-reads the shared state dir (0 = 1s)")
		depth    = fs.Int("queue-depth", 64, "max queued jobs before submissions are shed with 429")
		weights  = fs.String("tenant-weights", "", "admission weights as tenant=n pairs (DRR dequeue + graduated shedding)")
		quotas   = fs.String("tenant-quotas", "", "per-tenant queued-job caps as tenant=n pairs")
		values   = fs.String("tenant-values", "", "tenant business value as tenant=v pairs (revenue/h); overload sheds lowest-value tenants first")
		maxConc  = fs.Int("max-concurrent", 0, "max jobs executing at once (0 = GOMAXPROCS)")
		classes  = fs.String("class-limits", "failover=2,plan=1", "per-kind concurrency caps as kind=n pairs (empty disables)")
		workers  = fs.Int("workers", 0, "per-job failure-sweep workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheMB  = fs.Int64("sim-cache-mb", 0, "shared simulation cache bound in MiB (0 = default, negative disables)")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs and connections")
		logFmt   = fs.String("log-format", "json", "structured log encoding on stderr: json, text, or off")
		logLvl   = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stateDir == "" {
		return fmt.Errorf("serve: -state-dir is required")
	}
	limits, err := parseClassLimits(*classes)
	if err != nil {
		return err
	}
	tenantWeights, err := parsePairs("-tenant-weights", *weights)
	if err != nil {
		return err
	}
	tenantQuotas, err := parsePairs("-tenant-quotas", *quotas)
	if err != nil {
		return err
	}
	tenantValues, err := parseValuePairs("-tenant-values", *values)
	if err != nil {
		return err
	}
	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	logger := obslog.Discard()
	if *logFmt != "off" {
		logger = obslog.New(os.Stderr, obslog.Options{
			Level:  obslog.ParseLevel(*logLvl),
			Format: *logFmt,
		})
	}
	cfg := serve.Config{
		StateDir:      *stateDir,
		Instance:      *instance,
		LeaseTTL:      *leaseTTL,
		ScanInterval:  *scanIntv,
		QueueDepth:    *depth,
		TenantWeights: tenantWeights,
		TenantQuotas:  tenantQuotas,
		TenantValues:  tenantValues,
		MaxConcurrent: *maxConc,
		ClassLimits:   limits,
		Workers:       *workers,
		CacheBytes:    cacheBytes,
		Retry:         ropts.policy(nil),
		DrainTimeout:  *drain,
		Logger:        logger,
	}
	s, err := serve.New(*addr, cfg)
	if err != nil {
		return err
	}
	queued, _ := s.Manager().QueueDepths()
	logger.LogAttrs(ctx, slog.LevelInfo, "serve.listening",
		slog.String("addr", s.Addr()),
		slog.String("state_dir", *stateDir),
		slog.String("instance", s.Manager().Instance()),
		slog.Int("jobs_recovered", queued))
	return s.Run(ctx)
}

// parsePairs parses "name=n,name=n" maps (tenant weights and quotas).
func parsePairs(flagName, s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, n, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("serve: %s entry %q is not name=n", flagName, pair)
		}
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("serve: %s %q needs a positive count", flagName, pair)
		}
		out[name] = v
	}
	return out, nil
}

// parseValuePairs parses "name=v,name=v" float maps (tenant values).
func parseValuePairs(flagName, s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, n, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("serve: %s entry %q is not name=v", flagName, pair)
		}
		v, err := strconv.ParseFloat(n, 64)
		if err != nil || v <= 0 || v > 1e18 {
			return nil, fmt.Errorf("serve: %s %q needs a positive value", flagName, pair)
		}
		out[name] = v
	}
	return out, nil
}

// parseClassLimits parses "failover=2,plan=1" into per-kind caps.
func parseClassLimits(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	limits := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		kind, n, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("serve: -class-limits entry %q is not kind=n", pair)
		}
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("serve: -class-limits %q needs a positive count", pair)
		}
		limits[kind] = v
	}
	return limits, nil
}
