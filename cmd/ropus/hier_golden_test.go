package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ropus/internal/trace"
	"ropus/internal/workload"
)

// goldenScaleFleet writes the fleet-scale golden input: 1000 apps of
// the default class mix, one week of hourly samples, fully determined
// by the seed.
func goldenScaleFleet(t *testing.T, apps int, seed int64) string {
	t.Helper()
	set, err := workload.ScaleFleet(workload.ScaleConfig{
		Apps: apps, Weeks: 1, Interval: time.Hour, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, set); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenHierarchical pins the fleet-scale hierarchical pipeline:
// the sub-pool assignment dump and the full 1000-app place summary for
// the fixed seed. The placement is byte-deterministic at any worker
// count, so the corpus regenerates identically with -update on any
// machine.
func TestGoldenHierarchical(t *testing.T) {
	traces := goldenScaleFleet(t, 1000, 2006)

	out, err := captureStdout(t, func() error {
		return run([]string{"place", "-traces", traces,
			"-hierarchical", "-partition-apps", "25", "-partitions"})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "hier_partitions_seed2006.txt", out)

	out, err = captureStdout(t, func() error {
		return run([]string{"place", "-traces", traces,
			"-hierarchical", "-partition-apps", "25"})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "hier_place_seed2006.txt", out)
}
