package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/core"
	"ropus/internal/obslog"
	"ropus/internal/placement"
	"ropus/internal/planner"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/report"
	"ropus/internal/resilience"
	"ropus/internal/scenario"
	"ropus/internal/sim"
	"ropus/internal/telemetry"
	"ropus/internal/topology"
	"ropus/internal/trace"
	"ropus/internal/wlmgr"
	"ropus/internal/workload"
)

// withTelemetry runs body with the hooks built from the parsed
// telemetry flags and flushes the requested output files afterwards,
// also on the error and cancellation paths, so aborted runs still
// leave evidence behind. The -timeout flag bounds body's context, and
// a run that was cancelled (by timeout or signal) exits non-zero even
// when the pipeline degraded gracefully to a partial result.
//
// The run's trace ID is derived from the subcommand name and its
// result-determining seed, so two invocations of the same seeded
// command correlate under the same ID across logs, spans, and the
// flight recorder — and a re-run reproduces the ID along with the
// results.
func withTelemetry(ctx context.Context, o *telemetryOpts, name string, seed int64, body func(ctx context.Context, h telemetry.Hooks) error) error {
	ctx, cancel := o.runContext(ctx)
	defer cancel()
	h := o.hooks()
	ctx = telemetry.WithTrace(ctx, telemetry.TraceContext{TraceID: telemetry.SeedTraceID(name, seed)})
	ctx = obslog.Into(ctx, o.logger)
	o.logger.LogAttrs(ctx, slog.LevelInfo, "run.start",
		slog.String("command", name), slog.Int64("seed", seed))
	start := time.Now()
	err := body(ctx, h)
	if ferr := o.flush(); err == nil {
		err = ferr
	}
	if err == nil && ctx.Err() != nil {
		err = fmt.Errorf("run cancelled: %w", context.Cause(ctx))
	}
	level, attrs := slog.LevelInfo, []slog.Attr{
		slog.String("command", name),
		slog.Bool("ok", err == nil),
		slog.Any("elapsed_seconds", obslog.Volatile{Value: time.Since(start).Seconds()}),
	}
	if err != nil {
		level = slog.LevelError
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	o.logger.LogAttrs(ctx, level, "run.finish", attrs...)
	return err
}

// qosFlags registers the application-QoS flags shared by several
// subcommands and returns a builder for the resulting AppQoS.
func qosFlags(fs *flag.FlagSet) func() qos.AppQoS {
	var (
		uLow  = fs.Float64("ulow", 0.5, "utilization of allocation for ideal performance")
		uHigh = fs.Float64("uhigh", 0.66, "utilization of allocation ceiling for acceptable performance")
		uDegr = fs.Float64("udegr", 0.9, "utilization of allocation ceiling during degradation")
		m     = fs.Float64("m", 97, "percent of measurements that must be acceptable")
		tdegr = fs.Duration("tdegr", 30*time.Minute, "max contiguous degradation (0 = unlimited)")
	)
	return func() qos.AppQoS {
		return qos.AppQoS{ULow: *uLow, UHigh: *uHigh, UDegr: *uDegr, MPercent: *m, TDegr: *tdegr}
	}
}

func loadTraces(path string) (trace.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		spiky    = fs.Int("spiky", 2, "number of spiky applications")
		bursty   = fs.Int("bursty", 8, "number of bursty applications")
		smooth   = fs.Int("smooth", 16, "number of smooth applications")
		weeks    = fs.Int("weeks", 4, "weeks of history")
		interval = fs.Duration("interval", trace.DefaultInterval, "measurement interval")
		seed     = fs.Int64("seed", 2006, "generator seed")
		out      = fs.String("o", "", "output CSV file (default stdout)")
		batch    = fs.Int("batch", 0, "number of overnight batch applications")
		profiles = fs.String("profiles", "", "JSON profile file overriding the class mix")
		topoOut  = fs.String("topology-out", "", "also write a synthetic topology JSON over the pool's servers (srv-01...)")
		zones    = fs.Int("zones", 2, "zones in the synthetic topology")
		racks    = fs.Int("racks-per-zone", 2, "racks per zone in the synthetic topology")
		power    = fs.Int("power-domains", 0, "power domains striped across the pool (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var set trace.Set
	var err error
	if *profiles != "" {
		f, err := os.Open(*profiles)
		if err != nil {
			return err
		}
		defer f.Close()
		ps, err := workload.ReadProfiles(f)
		if err != nil {
			return err
		}
		set, err = workload.FleetFromProfiles(ps, *weeks, *interval, *seed)
		if err != nil {
			return err
		}
	} else {
		set, err = workload.Fleet(workload.FleetConfig{
			Spiky: *spiky, Bursty: *bursty, Smooth: *smooth, Batch: *batch,
			Weeks: *weeks, Interval: *interval, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, set); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %d traces x %d samples to %s (total peak %.1f CPUs)\n",
			len(set), set[0].Len(), *out, set.TotalPeak())
	}
	if *topoOut != "" {
		// The framework builds one candidate server per application
		// (srv-01...), so the synthetic topology covers exactly the pool a
		// failover run of these traces will see.
		topo, err := topology.Synthesize(topology.GenConfig{
			Servers: len(set), Zones: *zones, RacksPerZone: *racks, PowerDomains: *power,
		})
		if err != nil {
			return err
		}
		tf, err := os.Create(*topoOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		if err := topo.WriteJSON(tf); err != nil {
			return err
		}
		fmt.Printf("wrote topology (%d zones x %d racks, %d power domains) to %s\n",
			*zones, *racks, *power, *topoOut)
	}
	return nil
}

func cmdTranslate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("translate", flag.ContinueOnError)
	buildQoS := qosFlags(fs)
	topts := telemetryFlags(fs)
	var (
		in    = fs.String("traces", "", "input trace CSV (required)")
		theta = fs.Float64("theta", 0.6, "CoS2 resource access probability")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("translate: -traces is required")
	}
	set, err := loadTraces(*in)
	if err != nil {
		return err
	}
	q := buildQoS()
	return withTelemetry(ctx, topts, "translate", 0, func(ctx context.Context, h telemetry.Hooks) error {
		fmt.Printf("%-8s %10s %10s %10s %10s %12s %10s\n",
			"app", "p", "Dmax", "DnewMax", "maxAlloc", "reduction%", "degraded%")
		for _, tr := range set {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("translate: %w", err)
			}
			part, err := portfolio.TranslateCtx(ctx, tr, q, *theta, h)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %10.3f %10.2f %10.2f %10.2f %12.2f %10.2f\n",
				tr.AppID, part.P, part.DMax, part.DNewMax, part.MaxAllocation(),
				part.MaxCapReduction()*100, part.DegradedFraction(tr)*100)
		}
		return nil
	})
}

// frameworkOpts holds the parsed pool/framework flags. The knobs that
// determine results (theta, deadline, cpus, ga-seed, islands,
// hierarchical partitioning) feed the checkpoint run hash via fold;
// workers and cache size deliberately do not, so a journal can be
// resumed at any parallelism.
type frameworkOpts struct {
	theta    *float64
	deadline *time.Duration
	cpus     *int
	seed     *int64
	islands  *int
	hier     *bool
	partApps *int
	workers  *int
	cacheMB  *int64
	// topo, when set by a subcommand before build, makes the
	// hierarchical stitch rack-aware. It is not a flag of its own: the
	// subcommands that accept -topology load it themselves.
	topo *topology.Topology
}

// frameworkFlags registers the pool/framework flags.
func frameworkFlags(fs *flag.FlagSet) *frameworkOpts {
	return &frameworkOpts{
		theta:    fs.Float64("theta", 0.6, "CoS2 resource access probability"),
		deadline: fs.Duration("deadline", time.Hour, "CoS2 make-up deadline"),
		cpus:     fs.Int("cpus", 16, "CPUs per server"),
		seed:     fs.Int64("ga-seed", 42, "genetic search seed"),
		islands:  fs.Int("islands", 0, "genetic search islands (0/1 = single population; >1 splits the population into deterministic islands with ring migration)"),
		hier:     fs.Bool("hierarchical", false, "consolidate hierarchically: cluster the fleet into sub-pools by demand correlation, solve each independently, stitch the sub-plans"),
		partApps: fs.Int("partition-apps", 64, "max applications per sub-pool with -hierarchical"),
		workers:  fs.Int("workers", 0, "parallel failure-sweep (and sub-pool solve) workers (0 = GOMAXPROCS, 1 = sequential; results are identical)"),
		cacheMB:  fs.Int64("sim-cache-mb", 0, "shared simulation cache bound in MiB (0 = default, negative disables)"),
	}
}

// build constructs the framework with the given retry policy and
// checkpoint journal (both may be zero/nil).
func (o *frameworkOpts) build(h telemetry.Hooks, retry resilience.Policy, journal *checkpoint.Journal) (*core.Framework, error) {
	cacheBytes := *o.cacheMB << 20
	if *o.cacheMB < 0 {
		cacheBytes = -1
	}
	return core.New(core.Config{
		Commitment:           qos.PoolCommitment{Theta: *o.theta, Deadline: *o.deadline},
		ServerCPUs:           *o.cpus,
		ServerCapacityPerCPU: 1,
		GA:                   o.gaConfig(),
		Tolerance:            0.1,
		Hooks:                h,
		Workers:              *o.workers,
		CacheBytes:           cacheBytes,
		Retry:                retry,
		Journal:              journal,
		PartitionApps:        o.partitionApps(),
		Topology:             o.topo,
	})
}

// partitionApps is the effective sub-pool bound: the -partition-apps
// value when -hierarchical is set, zero (flat consolidation) otherwise.
func (o *frameworkOpts) partitionApps() int {
	if *o.hier {
		return *o.partApps
	}
	return 0
}

// gaConfig builds the genetic search configuration from the flags.
func (o *frameworkOpts) gaConfig() placement.GAConfig {
	ga := placement.DefaultGAConfig(*o.seed)
	ga.Islands = *o.islands
	return ga
}

// fold mixes the result-determining framework knobs into a run hash.
// The island count changes results only when > 1, and hierarchical
// partitioning only when enabled; each is folded in only then, so
// journals recorded before the knobs existed keep replaying under the
// defaults.
func (o *frameworkOpts) fold(hash *checkpoint.Hasher) {
	hash.Float(*o.theta).Int(int64(*o.deadline)).Int(int64(*o.cpus)).Int(*o.seed)
	if *o.islands > 1 {
		hash.Int(int64(*o.islands))
	}
	if *o.hier {
		hash.String("hier").Int(int64(*o.partApps))
	}
}

// foldQoS mixes an application QoS into a run hash.
func foldQoS(hash *checkpoint.Hasher, q qos.AppQoS) {
	hash.Float(q.ULow).Float(q.UHigh).Float(q.UDegr).Float(q.MPercent).Int(int64(q.TDegr))
}

// foldTraces mixes the trace contents into a run hash, so a journal
// recorded for one input file cannot silently resume another.
func foldTraces(hash *checkpoint.Hasher, set trace.Set) {
	hash.Int(int64(len(set)))
	for _, tr := range set {
		hash.String(tr.AppID).Int(int64(tr.Interval)).Floats(tr.Samples)
	}
}

// resilienceOpts holds the parsed self-healing flags shared by the
// failover and plan subcommands.
type resilienceOpts struct {
	path     *string
	resume   *bool
	retries  *int
	deadline *time.Duration
}

func resilienceFlags(fs *flag.FlagSet) *resilienceOpts {
	return &resilienceOpts{
		path:     fs.String("checkpoint", "", "crash-safe journal file; completed units are fsync'd as they finish"),
		resume:   fs.Bool("resume", false, "replay completed units from the -checkpoint journal instead of recomputing them"),
		retries:  fs.Int("retries", 2, "extra attempts per work unit after a transient failure (0 disables retry)"),
		deadline: fs.Duration("scenario-deadline", 0, "per-attempt deadline for each scenario/step; a timed-out attempt is retried (0 = none)"),
	}
}

// policy builds the deterministic retry policy from the flags. The
// backoff seed is fixed: the jitter schedule must not depend on
// anything that varies between a run and its resume.
func (o *resilienceOpts) policy(h telemetry.Hooks) resilience.Policy {
	return resilience.Policy{
		MaxAttempts:    *o.retries + 1,
		BaseDelay:      100 * time.Millisecond,
		MaxDelay:       2 * time.Second,
		Jitter:         0.2,
		Seed:           1,
		AttemptTimeout: *o.deadline,
		Hooks:          h,
	}
}

// journal opens the checkpoint journal bound to runHash, or returns
// nil when checkpointing is disabled. Status is logged to stderr so
// stdout stays byte-identical between interrupted and resumed runs.
func (o *resilienceOpts) journal(ctx context.Context, runHash uint64, h telemetry.Hooks) (*checkpoint.Journal, error) {
	if *o.path == "" {
		if *o.resume {
			return nil, fmt.Errorf("-resume requires -checkpoint")
		}
		return nil, nil
	}
	j, err := checkpoint.Open(*o.path, runHash, *o.resume, h)
	if err != nil {
		return nil, err
	}
	if *o.resume {
		obslog.From(ctx).InfoContext(ctx, "checkpoint.resume",
			slog.Int("replayed", j.Replayed()), slog.String("path", *o.path))
	} else {
		obslog.From(ctx).InfoContext(ctx, "checkpoint.open",
			slog.String("path", *o.path))
	}
	return j, nil
}

func printPlan(plan *placement.Plan, servers []placement.Server) {
	for s, usage := range plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		fmt.Printf("  %-8s required %6.2f / %5.1f CPUs  theta' %.4f  apps %v\n",
			servers[s].ID, usage.Required, servers[s].Capacity(), usage.Result.Theta, usage.AppIDs)
	}
}

func cmdPlace(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("place", flag.ContinueOnError)
	buildQoS := qosFlags(fs)
	fwk := frameworkFlags(fs)
	topts := telemetryFlags(fs)
	in := fs.String("traces", "", "input trace CSV (required)")
	diagnose := fs.Bool("diagnose", false, "show the worst resource-access groups per server")
	partitions := fs.Bool("partitions", false, "with -hierarchical: print the sub-pool assignment and exit without placing")
	topoPath := fs.String("topology", "", "topology JSON file; with -hierarchical, sub-pools are stitched rack-first")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("place: -traces is required")
	}
	if *partitions && !*fwk.hier {
		return fmt.Errorf("place: -partitions requires -hierarchical")
	}
	if *topoPath != "" {
		tb, err := os.ReadFile(*topoPath)
		if err != nil {
			return err
		}
		if fwk.topo, err = topology.ReadJSON(bytes.NewReader(tb)); err != nil {
			return err
		}
	}
	set, err := loadTraces(*in)
	if err != nil {
		return err
	}
	return withTelemetry(ctx, topts, "place", *fwk.seed, func(ctx context.Context, h telemetry.Hooks) error {
		f, err := fwk.build(h, resilience.Policy{}, nil)
		if err != nil {
			return err
		}
		q := buildQoS()
		reqs := core.Requirements{Default: qos.Requirement{Normal: q, Failure: q}}
		tr, err := f.Translate(ctx, set, reqs)
		if err != nil {
			return err
		}
		if *partitions {
			groups, err := f.PartitionPreview(ctx, tr)
			if err != nil {
				return err
			}
			fmt.Printf("partitioned %d applications into %d sub-pools (max %d apps each)\n",
				len(set), len(groups), *fwk.partApps)
			for k, ids := range groups {
				fmt.Printf("  partition %03d: %d apps %v\n", k, len(ids), ids)
			}
			return nil
		}
		cons, err := f.Consolidate(ctx, tr)
		if err != nil {
			return err
		}
		fmt.Printf("consolidated %d applications onto %d servers (sum of peak allocations %.1f CPUs, required %.1f CPUs)\n",
			len(set), cons.ServersUsed(), tr.CPeakTotal(), cons.CRequTotal())
		if cons.Hier != nil {
			printHier(cons.Hier)
		}
		printPlan(cons.Plan, cons.Problem.Servers)
		if *diagnose {
			if err := printDiagnostics(cons); err != nil {
				return err
			}
		}
		return nil
	})
}

// printHier summarizes a hierarchical consolidation: one line per
// sub-pool, then the rack placements when the stitch was rack-aware.
func printHier(hier *placement.HierPlan) {
	fmt.Printf("hierarchical: %d sub-pools solved independently and stitched\n", len(hier.Partitions))
	for _, p := range hier.Partitions {
		rack := p.Rack
		if rack == "" {
			rack = "-"
		}
		fmt.Printf("  partition %03d: %3d apps on %2d servers  rack %-10s required %7.2f CPUs\n",
			p.Index, len(p.AppIDs), p.ServersUsed, rack, p.Required)
	}
	for _, r := range hier.Racks {
		fmt.Printf("  rack %-10s %2d servers used by partitions %v\n", r.Rack, r.Servers, r.Partitions)
	}
}

// printDiagnostics shows where each used server earns or loses its
// resource access probability.
func printDiagnostics(cons *core.Consolidation) error {
	fmt.Println("per-server resource access diagnostics:")
	for s, usage := range cons.Plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		workloads := make([]sim.Workload, 0, len(usage.AppIDs))
		for _, id := range usage.AppIDs {
			for _, a := range cons.Problem.Apps {
				if a.ID == id {
					workloads = append(workloads, a.Workload)
				}
			}
		}
		agg, err := sim.NewAggregate(workloads)
		if err != nil {
			return err
		}
		diag, err := agg.Diagnose(sim.Config{
			Capacity:      usage.Required,
			Commitment:    cons.Problem.Commitment,
			SlotsPerDay:   cons.Problem.SlotsPerDay,
			DeadlineSlots: cons.Problem.DeadlineSlots,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s %s\n", cons.Problem.Servers[s].ID, diag)
	}
	return nil
}

func cmdFailover(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("failover", flag.ContinueOnError)
	buildQoS := qosFlags(fs)
	fwk := frameworkFlags(fs)
	ropts := resilienceFlags(fs)
	topts := telemetryFlags(fs)
	var (
		in       = fs.String("traces", "", "input trace CSV (required)")
		failM    = fs.Float64("fail-m", 97, "failure-mode percent of acceptable measurements")
		failTDeg = fs.Duration("fail-tdegr", 30*time.Minute, "failure-mode max contiguous degradation")
		asJSON   = fs.Bool("json", false, "emit a JSON report instead of text")
		scenPath = fs.String("scenarios", "", "scenario DSL JSON file: named correlated-failure scenarios swept after the single-failure analysis")
		topoPath = fs.String("topology", "", "topology JSON file resolving the scenario file's domain references")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("failover: -traces is required")
	}
	if *topoPath != "" && *scenPath == "" {
		return fmt.Errorf("failover: -topology is only meaningful with -scenarios")
	}
	set, err := loadTraces(*in)
	if err != nil {
		return err
	}
	var (
		scenDoc   *scenario.Doc
		scenBytes []byte
		topo      *topology.Topology
		topoBytes []byte
	)
	if *scenPath != "" {
		if scenBytes, err = os.ReadFile(*scenPath); err != nil {
			return err
		}
		if scenDoc, err = scenario.ReadJSON(bytes.NewReader(scenBytes)); err != nil {
			return err
		}
	}
	if *topoPath != "" {
		if topoBytes, err = os.ReadFile(*topoPath); err != nil {
			return err
		}
		if topo, err = topology.ReadJSON(bytes.NewReader(topoBytes)); err != nil {
			return err
		}
	}
	return withTelemetry(ctx, topts, "failover", *fwk.seed, func(ctx context.Context, h telemetry.Hooks) error {
		normal := buildQoS()
		failQoS := normal
		failQoS.MPercent = *failM
		failQoS.TDegr = *failTDeg
		hash := checkpoint.NewHasher().String("failover")
		foldQoS(hash, normal)
		foldQoS(hash, failQoS)
		fwk.fold(hash)
		foldTraces(hash, set)
		// The scenario universe and topology are result-determining:
		// fold the file contents so a journal recorded for one scenario
		// file cannot silently resume another. Plain runs fold nothing,
		// keeping their historical run hashes valid.
		if scenBytes != nil {
			hash.String("scenarios").String(string(scenBytes))
		}
		if topoBytes != nil {
			hash.String("topology").String(string(topoBytes))
		}
		j, err := ropts.journal(ctx, hash.Sum(), h)
		if err != nil {
			return err
		}
		defer j.Close()
		f, err := fwk.build(h, ropts.policy(h), j)
		if err != nil {
			return err
		}
		reqs := core.Requirements{Default: qos.Requirement{Normal: normal, Failure: failQoS}}
		var result *core.Report
		if scenDoc != nil {
			specs, err := scenDoc.Compile(topo)
			if err != nil {
				return err
			}
			result, err = f.RunScenarios(ctx, set, reqs, specs, scenDoc.Economics)
			if err != nil {
				return err
			}
		} else {
			result, err = f.Run(ctx, set, reqs)
			if err != nil {
				return err
			}
		}
		if *asJSON {
			return report.JSON(os.Stdout, result)
		}
		return report.Text(os.Stdout, result)
	})
}

func cmdSimulate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	buildQoS := qosFlags(fs)
	topts := telemetryFlags(fs)
	var (
		in       = fs.String("traces", "", "input trace CSV (required)")
		theta    = fs.Float64("theta", 0.6, "CoS2 resource access probability used for translation")
		capacity = fs.Float64("capacity", 16, "server capacity in CPUs")
		lag      = fs.Int("lag", 1, "workload manager allocation lag in slots")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("simulate: -traces is required")
	}
	set, err := loadTraces(*in)
	if err != nil {
		return err
	}
	return withTelemetry(ctx, topts, "simulate", 0, func(ctx context.Context, h telemetry.Hooks) error {
		q := buildQoS()
		containers := make([]wlmgr.Container, len(set))
		for i, tr := range set {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("simulate: %w", err)
			}
			part, err := portfolio.TranslateCtx(ctx, tr, q, *theta, h)
			if err != nil {
				return err
			}
			containers[i] = wlmgr.Container{Demand: tr, Partition: part}
		}
		res, err := wlmgr.RunWithHooks(ctx, *capacity, containers, *lag, h)
		if err != nil {
			return err
		}
		fmt.Printf("workload manager replay at %.1f CPUs, lag %d slot(s); CoS1 overloads: %d\n",
			*capacity, *lag, res.CoS1Overload)
		fmt.Printf("%-8s %12s %12s %12s %10s %10s\n",
			"app", "acceptable%", "degraded%", "violated%", "maxU", "satisfied")
		for _, cs := range res.Containers {
			comp, err := wlmgr.CheckCompliance(cs, q, set[0].Interval)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %12.2f %12.2f %12.2f %10.3f %10v\n",
				cs.AppID, comp.AcceptableFraction*100, comp.DegradedFraction*100,
				comp.ViolatedFraction*100, comp.MaxUtilization, comp.Satisfied)
		}
		return nil
	})
}

func cmdPlan(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	buildQoS := qosFlags(fs)
	fwk := frameworkFlags(fs)
	ropts := resilienceFlags(fs)
	topts := telemetryFlags(fs)
	var (
		in      = fs.String("traces", "", "input trace CSV (required)")
		horizon = fs.Int("horizon-weeks", 12, "planning horizon in weeks")
		step    = fs.Int("step-weeks", 4, "evaluation step in weeks (must divide the horizon)")
		pool    = fs.Int("pool-servers", 0, "servers currently in the pool (0 = just report)")
		asJSON  = fs.Bool("json", false, "emit the plan as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("plan: -traces is required")
	}
	set, err := loadTraces(*in)
	if err != nil {
		return err
	}
	return withTelemetry(ctx, topts, "plan", *fwk.seed, func(ctx context.Context, h telemetry.Hooks) error {
		q := buildQoS()
		hash := checkpoint.NewHasher().String("plan")
		foldQoS(hash, q)
		fwk.fold(hash)
		hash.Int(int64(*horizon)).Int(int64(*step)).Int(int64(*pool))
		foldTraces(hash, set)
		j, err := ropts.journal(ctx, hash.Sum(), h)
		if err != nil {
			return err
		}
		defer j.Close()
		f, err := fwk.build(h, resilience.Policy{}, nil)
		if err != nil {
			return err
		}
		cfg := planner.Config{
			Framework:    f,
			Requirements: core.Requirements{Default: qos.Requirement{Normal: q, Failure: q}},
			HorizonWeeks: *horizon,
			StepWeeks:    *step,
			PoolServers:  *pool,
			Hooks:        h,
			Retry:        ropts.policy(h),
			Journal:      j,
		}
		plan, err := planner.Run(ctx, cfg, set)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(plan)
		}
		fmt.Printf("baseline: %d servers, required %.0f CPUs, peak allocations %.0f CPUs\n",
			plan.Baseline.Servers, plan.Baseline.CRequ, plan.Baseline.CPeak)
		fmt.Printf("%8s %10s %12s %12s\n", "+weeks", "servers", "CRequ CPU", "CPeak CPU")
		for _, step := range plan.Steps {
			if !step.Feasible {
				fmt.Printf("%8d %10s %12s %12.0f\n", step.WeeksAhead, "-", "unplaceable", step.CPeak)
				continue
			}
			fmt.Printf("%8d %10d %12.0f %12.0f\n", step.WeeksAhead, step.Servers, step.CRequ, step.CPeak)
		}
		if plan.Truncated {
			fmt.Printf("plan truncated by cancellation: %d of %d horizon steps evaluated\n",
				len(plan.Steps), *horizon / *step)
		}
		if plan.ExhaustedAtWeeks > 0 {
			fmt.Printf("pool of %d servers exhausted %d weeks out\n", *pool, plan.ExhaustedAtWeeks)
		} else if *pool > 0 {
			fmt.Printf("pool of %d servers suffices for the %d-week horizon\n", *pool, *horizon)
		}
		return nil
	})
}
