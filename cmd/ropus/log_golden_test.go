package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ropus/internal/telemetry"
)

// captureStderr runs fn with os.Stderr redirected to a buffer, so tests
// can pin the structured log stream the same way captureStdout pins
// reports.
func captureStderr(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = orig }()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	ferr := fn()
	w.Close()
	out := <-done
	return out, ferr
}

// TestGoldenStructuredLogs pins the structured log schema of a full
// plan run: with -log-deterministic and a fixed seed the stderr stream
// is byte-stable, every line is one JSON object, and every line carries
// the run's seed-derived trace ID. Schema drift (renamed stages,
// lost attributes, timestamps leaking back in) shows up as a golden
// diff; deliberate changes regenerate with -update.
func TestGoldenStructuredLogs(t *testing.T) {
	traces := goldenFleet(t, 3)

	var logs []byte
	if _, err := captureStdout(t, func() error {
		var lerr error
		logs, lerr = captureStderr(t, func() error {
			return run([]string{"plan", "-traces", traces, "-json",
				"-horizon-weeks", "2", "-step-weeks", "1", "-pool-servers", "2",
				"-log-deterministic"})
		})
		return lerr
	}); err != nil {
		t.Fatal(err)
	}

	wantTrace := telemetry.SeedTraceID("plan", 42) // default -ga-seed
	stages := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(logs)), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
		if rec["trace_id"] != wantTrace {
			t.Errorf("log line trace_id = %v, want %q: %s", rec["trace_id"], wantTrace, line)
		}
		if _, ok := rec["time"]; ok {
			t.Errorf("deterministic log carries a timestamp: %s", line)
		}
		stages[rec["msg"].(string)] = true
	}
	for _, stage := range []string{"run.start", "planner.run", "planner.step", "core.translate", "run.finish"} {
		if !stages[stage] {
			t.Errorf("pipeline stage %q missing from the log stream (got %v)", stage, stages)
		}
	}

	checkGolden(t, "plan_logs_seed3.jsonl", logs)
}

// TestMetricsOutProm: a -metrics-out path ending in .prom switches the
// snapshot to Prometheus text exposition, and the file must pass the
// repo's own lint.
func TestMetricsOutProm(t *testing.T) {
	traces := writeFleet(t)
	out := filepath.Join(t.TempDir(), "metrics.prom")
	if _, err := captureStdout(t, func() error {
		return run([]string{"failover", "-traces", traces, "-json",
			"-log-format", "off", "-metrics-out", out})
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := telemetry.LintPrometheusText(f); err != nil {
		t.Errorf("CLI .prom sidecar fails lint: %v", err)
	}
}
