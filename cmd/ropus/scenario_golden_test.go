package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// goldenTopology writes the fixed two-zone topology over the 4-server
// pool the golden fleet consolidates onto.
func goldenTopology(t *testing.T) string {
	t.Helper()
	doc := `{
  "domains": [
    {"id": "zone-a", "kind": "zone", "servers": ["srv-01", "srv-03"]},
    {"id": "zone-b", "kind": "zone", "servers": ["srv-02", "srv-04"]}
  ]
}`
	path := filepath.Join(t.TempDir(), "topology.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeScenarioDoc(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenarios.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioGolden pins the scenario-universe failover output for the
// three scenario classes — correlated zone loss, cascading failure and
// maintenance window — against golden files, one class per file plus a
// combined ranked text report. Deliberate changes regenerate the corpus
// with -update.
func TestScenarioGolden(t *testing.T) {
	const seed = 3
	econ := `"economics": {
    "defaultRevenuePerHour": 100, "defaultPenaltyPerHour": 10,
    "apps": {"app-01": {"revenuePerHour": 500, "penaltyPerHour": 50}}
  }`
	classes := []struct {
		name string
		doc  string
	}{
		{"zone_loss", `{
  ` + econ + `,
  "scenarios": [
    {"name": "zone-a-down", "kind": "domain-loss", "domain": "zone-a", "probability": 0.05}
  ]
}`},
		{"cascade", `{
  ` + econ + `,
  "scenarios": [
    {"name": "power-cascade", "kind": "cascade", "servers": ["srv-01"], "overloadFactor": 0.5, "probability": 0.01}
  ]
}`},
		{"maintenance", `{
  ` + econ + `,
  "scenarios": [
    {"name": "patch-window", "kind": "maintenance", "servers": ["srv-02"], "theta": 0.4}
  ]
}`},
	}

	traces := goldenFleet(t, seed)
	topo := goldenTopology(t)
	for _, tc := range classes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			scen := writeScenarioDoc(t, tc.doc)
			out, err := captureStdout(t, func() error {
				return run([]string{"failover", "-traces", traces,
					"-scenarios", scen, "-topology", topo, "-json"})
			})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("scenario_%s_seed%d.json", tc.name, seed), out)
		})
	}

	// The combined universe, as the human-readable ranked report.
	t.Run("ranked_text", func(t *testing.T) {
		combined := `{
  ` + econ + `,
  "scenarios": [
    {"name": "zone-a-down", "kind": "domain-loss", "domain": "zone-a", "probability": 0.05},
    {"name": "power-cascade", "kind": "cascade", "servers": ["srv-01"], "overloadFactor": 0.5, "probability": 0.01},
    {"name": "patch-window", "kind": "maintenance", "servers": ["srv-02"], "theta": 0.4},
    {"name": "two-of-zone-b", "kind": "k-of-domain", "domain": "zone-b", "k": 2, "probability": 0.02}
  ]
}`
		scen := writeScenarioDoc(t, combined)
		out, err := captureStdout(t, func() error {
			return run([]string{"failover", "-traces", traces,
				"-scenarios", scen, "-topology", topo})
		})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fmt.Sprintf("scenario_ranked_seed%d.txt", seed), out)
	})
}
