// Command ropus is the command-line interface to the R-Opus capacity
// management framework.
//
// Subcommands:
//
//	gen       generate a synthetic fleet of demand traces (CSV)
//	translate run the QoS translation and print per-application results
//	place     consolidate translated workloads onto 16-way servers
//	failover  full pipeline incl. single-server failure analysis
//	simulate  replay traces through the workload-manager simulator
//	plan      long-term capacity planning over a forecast horizon
//	serve     long-running HTTP planning service with admission control
//
// Run "ropus <subcommand> -h" for the flags of each subcommand.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ropus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	// SIGINT/SIGTERM cancel the pipeline; the compute subcommands
	// degrade to best-so-far partial results and still flush their
	// -metrics-out/-trace-out sidecars before exiting non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "translate":
		return cmdTranslate(ctx, args[1:])
	case "place":
		return cmdPlace(ctx, args[1:])
	case "failover":
		return cmdFailover(ctx, args[1:])
	case "simulate":
		return cmdSimulate(ctx, args[1:])
	case "plan":
		return cmdPlan(ctx, args[1:])
	case "serve":
		return cmdServe(ctx, args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: ropus <subcommand> [flags]

subcommands:
  gen        generate a synthetic fleet of demand traces (CSV on stdout or -o)
  translate  run the QoS translation and print per-application results
  place      consolidate translated workloads onto servers
  failover   full pipeline including single-server failure analysis
  simulate   replay traces through the workload-manager simulator
  plan       long-term capacity planning over a forecast horizon
  serve      long-running HTTP planning service with admission control
`)
}
