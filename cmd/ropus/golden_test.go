package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ropus/internal/trace"
	"ropus/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenFleet writes the fixed fleet for one golden seed: 4 apps, 3
// weeks of hourly samples, fully determined by the seed.
func goldenFleet(t *testing.T, seed int64) string {
	t.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 1, Smooth: 2,
		Weeks: 3, Interval: time.Hour, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, set); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares got with the named golden file, or rewrites the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run 'go test ./cmd/ropus -run Golden -update'): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file %s\n--- golden\n%s\n--- got\n%s", name, path, want, got)
	}
}

// TestGolden pins the user-visible output of the three pipeline stages
// — the portfolio split, the failover report JSON and the capacity-plan
// JSON — for three fixed seeds. Any behavioural drift in translation,
// placement, failure analysis or planning shows up as a readable diff;
// deliberate changes regenerate the corpus with -update.
func TestGolden(t *testing.T) {
	for _, seed := range []int64{3, 7, 2006} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			traces := goldenFleet(t, seed)

			out, err := captureStdout(t, func() error {
				return run([]string{"translate", "-traces", traces})
			})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("translate_seed%d.txt", seed), out)

			out, err = captureStdout(t, func() error {
				return run([]string{"failover", "-traces", traces, "-json"})
			})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("failover_seed%d.json", seed), out)

			out, err = captureStdout(t, func() error {
				return run([]string{"plan", "-traces", traces, "-json",
					"-horizon-weeks", "2", "-step-weeks", "1", "-pool-servers", "2"})
			})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("plan_seed%d.json", seed), out)
		})
	}
}
