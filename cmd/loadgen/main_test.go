package main

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"ropus/internal/serve"
)

func testConfig(targets []string) config {
	return config{
		targets:  targets,
		duration: 1200 * time.Millisecond,
		rate:     15,
		seed:     7,
		specs:    2,
		apps:     2,
		weeks:    1,
		kind:     serve.KindTranslate,
		tenants:  "gold=2,bronze=1",
		wait:     90 * time.Second,
	}
}

// TestScheduleDeterministic: the same seed yields byte-for-byte the
// same arrival plan — times, specs, targets and tenants.
func TestScheduleDeterministic(t *testing.T) {
	cfg := testConfig([]string{"http://a", "http://b"})
	first, err := schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("empty schedule")
	}
	if len(first) != len(second) {
		t.Fatalf("replay produced %d arrivals, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, first[i], second[i])
		}
	}
	cfg.seed = 8
	other, err := schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := len(other) == len(first)
	for i := 0; same && i < len(first); i++ {
		same = other[i] == first[i]
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestDriveAgainstLiveServer: end-to-end against one in-process serve
// instance — every accepted job completes, nothing answers 5xx, and
// the dedup arithmetic holds (the spec pool bounds unique jobs).
func TestDriveAgainstLiveServer(t *testing.T) {
	s, err := serve.New("127.0.0.1:0", serve.Config{
		StateDir: filepath.Join(t.TempDir(), "state"),
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serverDone := make(chan error, 1)
	go func() { serverDone <- s.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-serverDone
	})

	cfg := testConfig([]string{"http://" + s.Addr()})
	rep, err := drive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submissions == 0 {
		t.Fatal("no submissions fired")
	}
	if rep.Errors5xx != 0 || rep.OtherErrors != 0 {
		t.Errorf("errors: %d 5xx, %d other", rep.Errors5xx, rep.OtherErrors)
	}
	if rep.UniqueJobs == 0 || rep.UniqueJobs > cfg.specs {
		t.Errorf("unique jobs %d outside (0, %d]", rep.UniqueJobs, cfg.specs)
	}
	if rep.Accepted != rep.Submissions-rep.Shed {
		t.Errorf("accounting: %d accepted + %d shed != %d submissions",
			rep.Accepted, rep.Shed, rep.Submissions)
	}
	if rep.Deduplicated != rep.Accepted-rep.UniqueJobs {
		t.Errorf("dedup count %d, want accepted %d - unique %d",
			rep.Deduplicated, rep.Accepted, rep.UniqueJobs)
	}
	if rep.Completed != rep.UniqueJobs {
		t.Errorf("%d of %d unique jobs completed", rep.Completed, rep.UniqueJobs)
	}
	if rep.Failed != 0 {
		t.Errorf("%d jobs failed", rep.Failed)
	}
	if rep.SubmitP99Sec < rep.SubmitP50Sec {
		t.Errorf("p99 %v below p50 %v", rep.SubmitP99Sec, rep.SubmitP50Sec)
	}
	if len(rep.PerInstance) != 1 || rep.PerInstance[0].Instance == "" {
		t.Errorf("per-instance scrape: %+v", rep.PerInstance)
	}
	if rep.PerInstance[0].Completed != int64(rep.UniqueJobs) {
		t.Errorf("scraped completions %d, want %d", rep.PerInstance[0].Completed, rep.UniqueJobs)
	}
}

// TestMetricValue: counter extraction from Prometheus text exposition
// tolerates HELP/TYPE lines, prefix-sharing names and absent metrics.
func TestMetricValue(t *testing.T) {
	exposition := []byte(`# HELP serve_jobs_stolen_total jobs stolen
# TYPE serve_jobs_stolen_total counter
serve_jobs_stolen_total 3
serve_jobs_stolen_total_rate 99
serve_jobs_adopted_total 0
`)
	if got := metricValue(exposition, "serve_jobs_stolen_total"); got != 3 {
		t.Errorf("stolen = %d, want 3", got)
	}
	if got := metricValue(exposition, "serve_jobs_adopted_total"); got != 0 {
		t.Errorf("adopted = %d, want 0", got)
	}
	if got := metricValue(exposition, "serve_jobs_missing_total"); got != 0 {
		t.Errorf("absent metric = %d, want 0", got)
	}
}

// TestQuantileNearestRank: boundary behavior of the report quantiles.
func TestQuantileNearestRank(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := quantile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := quantile(xs, 0.99); got != 5 {
		t.Errorf("p99 = %v, want 5", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty sample = %v, want 0", got)
	}
	if xs[0] != 5 {
		t.Error("quantile mutated its input")
	}
}
