// Command loadgen is a seeded open-loop load generator for a ropus
// serve fleet. It replays an arrival process shaped by the repo's own
// workload generator — the summed demand of a synthetic fleet becomes
// the (inhomogeneous) submission intensity, thinned into Poisson
// arrivals — and drives it against N serve instances round-robin,
// open-loop: arrivals fire on schedule whether or not earlier requests
// have completed, which is what overloads a real admission path.
//
// After the arrival window it waits for every accepted job to finish
// (any instance can answer for any job — the fleet scanner folds peer
// results into each local table), scrapes the per-instance steal and
// adoption counters, and writes a machine-readable report (submit
// latency quantiles, shed rate, steal count, completion throughput) to
// -out, the BENCH_serve_fleet.json artifact of scripts/fleet_e2e.sh.
//
// Everything is deterministic for a given -seed except the service's
// own timing: the same seed replays the same specs, tenants, targets
// and arrival offsets.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ropus/internal/serve"
	"ropus/internal/trace"
	"ropus/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	targets  []string
	duration time.Duration
	rate     float64
	seed     int64
	specs    int
	apps     int
	weeks    int
	kind     string
	tenants  string
	wait     time.Duration
	out      string
}

// arrival is one scheduled submission, fixed before the clock starts.
type arrival struct {
	at     time.Duration
	spec   int
	target int
	tenant string
}

// outcome is one submission's observed result.
type outcome struct {
	code    int
	id      string
	latency float64
}

// Report is the written benchmark document.
type Report struct {
	Targets      []string  `json:"targets"`
	Seed         int64     `json:"seed"`
	DurationSecs float64   `json:"duration_seconds"`
	RatePerSec   float64   `json:"offered_rate_per_second"`
	Submissions  int       `json:"submissions"`
	Accepted     int       `json:"accepted"`
	Deduplicated int       `json:"deduplicated"`
	Shed         int       `json:"shed"`
	ShedRate     float64   `json:"shed_rate"`
	Errors5xx    int       `json:"errors_5xx"`
	OtherErrors  int       `json:"other_errors"`
	SubmitP50Sec float64   `json:"submit_latency_p50_seconds"`
	SubmitP99Sec float64   `json:"submit_latency_p99_seconds"`
	UniqueJobs   int       `json:"unique_jobs"`
	Completed    int       `json:"completed"`
	Failed       int       `json:"failed"`
	Throughput   float64   `json:"completion_throughput_per_second"`
	Steals       int64     `json:"steals_total"`
	Adoptions    int64     `json:"adoptions_total"`
	PerInstance  []Counter `json:"per_instance"`
}

// Counter is one instance's scraped fleet counters.
type Counter struct {
	Target    string `json:"target"`
	Instance  string `json:"instance"`
	Steals    int64  `json:"steals"`
	Adoptions int64  `json:"adoptions"`
	Completed int64  `json:"completed"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		targets  = fs.String("targets", "http://127.0.0.1:7925", "comma-separated serve base URLs")
		duration = fs.Duration("duration", 10*time.Second, "arrival window")
		rate     = fs.Float64("rate", 5, "mean submissions per second (modulated by the workload shape)")
		seed     = fs.Int64("seed", 1, "seed for specs, tenants, targets and arrival times")
		specs    = fs.Int("specs", 8, "distinct spec pool size (arrivals cycle through it, exercising dedup)")
		apps     = fs.Int("apps", 3, "applications per generated spec")
		weeks    = fs.Int("weeks", 1, "weeks of demand history per spec")
		kind     = fs.String("kind", serve.KindTranslate, "job kind to submit")
		tenants  = fs.String("tenants", "", "traffic mix as tenant=share pairs (empty = single default tenant)")
		wait     = fs.Duration("wait", 2*time.Minute, "budget for accepted jobs to complete after the window")
		out      = fs.String("out", "BENCH_serve_fleet.json", "report path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := config{
		targets:  splitTrim(*targets),
		duration: *duration,
		rate:     *rate,
		seed:     *seed,
		specs:    *specs,
		apps:     *apps,
		weeks:    *weeks,
		kind:     *kind,
		tenants:  *tenants,
		wait:     *wait,
		out:      *out,
	}
	if len(cfg.targets) == 0 {
		return fmt.Errorf("no -targets")
	}
	report, err := drive(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loadgen: %d submissions, %d accepted (%d unique), %d shed, %d completed, %d stolen -> %s\n",
		report.Submissions, report.Accepted, report.UniqueJobs, report.Shed, report.Completed, report.Steals, cfg.out)
	if report.Errors5xx > 0 {
		return fmt.Errorf("%d submissions answered 5xx", report.Errors5xx)
	}
	return nil
}

func splitTrim(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseMix turns "gold=3,bronze=1" into a weighted tenant list.
func parseMix(s string) ([]string, []int, error) {
	if s == "" {
		return []string{""}, []int{1}, nil
	}
	var names []string
	var weights []int
	for _, pair := range strings.Split(s, ",") {
		name, n, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, nil, fmt.Errorf("-tenants entry %q is not tenant=share", pair)
		}
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			return nil, nil, fmt.Errorf("-tenants %q needs a positive share", pair)
		}
		names = append(names, name)
		weights = append(weights, v)
	}
	return names, weights, nil
}

// specPool generates the distinct specs arrivals cycle through. Each
// gets its own deterministic traces and GA seed, so the pool maps to
// exactly `n` unique job IDs server-side.
func specPool(cfg config) ([]serve.JobSpec, error) {
	pool := make([]serve.JobSpec, cfg.specs)
	for i := range pool {
		smooth := cfg.apps - 2
		if smooth < 0 {
			smooth = 0
		}
		set, err := workload.Fleet(workload.FleetConfig{
			Spiky: 1, Bursty: 1, Smooth: smooth,
			Weeks: cfg.weeks, Interval: time.Hour, Seed: cfg.seed + int64(i)*101,
		})
		if err != nil {
			return nil, fmt.Errorf("generate spec %d: %w", i, err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, set); err != nil {
			return nil, fmt.Errorf("encode spec %d: %w", i, err)
		}
		pool[i] = serve.JobSpec{Kind: cfg.kind, TracesCSV: buf.String(), GASeed: cfg.seed + int64(i)}
	}
	return pool, nil
}

// intensity derives the normalized arrival-intensity profile from the
// workload generator: the summed demand of a reference fleet, scaled to
// mean 1 so -rate stays the mean offered rate.
func intensity(cfg config) []float64 {
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 2, Smooth: 3,
		Weeks: 1, Interval: time.Hour, Seed: cfg.seed,
	})
	if err != nil || len(set) == 0 {
		return []float64{1}
	}
	sum := make([]float64, len(set[0].Samples))
	for _, tr := range set {
		for i, v := range tr.Samples {
			if i < len(sum) {
				sum[i] += v
			}
		}
	}
	var mean float64
	for _, v := range sum {
		mean += v
	}
	mean /= float64(len(sum))
	if mean <= 0 {
		return []float64{1}
	}
	for i := range sum {
		sum[i] /= mean
	}
	return sum
}

// schedule fixes every arrival before the clock starts: thinned
// inhomogeneous Poisson over the workload intensity (the classic
// Lewis-Shedler construction), with spec, target and tenant drawn from
// the same seeded stream.
func schedule(cfg config) ([]arrival, error) {
	tenantNames, tenantWeights, err := parseMix(cfg.tenants)
	if err != nil {
		return nil, err
	}
	totalShare := 0
	for _, w := range tenantWeights {
		totalShare += w
	}
	prof := intensity(cfg)
	lambdaMax := 0.0
	for _, v := range prof {
		if v > lambdaMax {
			lambdaMax = v
		}
	}
	lambdaMax *= cfg.rate

	rng := rand.New(rand.NewSource(cfg.seed))
	var arrivals []arrival
	t := 0.0
	horizon := cfg.duration.Seconds()
	for {
		t += rng.ExpFloat64() / lambdaMax
		if t >= horizon {
			break
		}
		slot := int(t / horizon * float64(len(prof)))
		if slot >= len(prof) {
			slot = len(prof) - 1
		}
		if rng.Float64()*lambdaMax > cfg.rate*prof[slot] {
			continue // thinned out
		}
		pick := rng.Intn(totalShare)
		tenant := tenantNames[0]
		for i, w := range tenantWeights {
			if pick < w {
				tenant = tenantNames[i]
				break
			}
			pick -= w
		}
		arrivals = append(arrivals, arrival{
			at:     time.Duration(t * float64(time.Second)),
			spec:   rng.Intn(cfg.specs),
			target: len(arrivals) % len(cfg.targets),
			tenant: tenant,
		})
	}
	return arrivals, nil
}

// drive runs the generator: fire the schedule open-loop, then wait for
// completions and scrape the fleet counters.
func drive(cfg config) (*Report, error) {
	pool, err := specPool(cfg)
	if err != nil {
		return nil, err
	}
	arrivals, err := schedule(cfg)
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(pool))
	for i, spec := range pool {
		if bodies[i], err = json.Marshal(spec); err != nil {
			return nil, err
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	outcomes := make([]outcome, len(arrivals))
	done := make(chan int, len(arrivals))
	start := time.Now()
	for i, a := range arrivals {
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		go func(i int, a arrival) {
			outcomes[i] = submit(client, cfg.targets[a.target], bodies[a.spec], a.tenant)
			done <- i
		}(i, a)
	}
	for range arrivals {
		<-done
	}

	rep := &Report{
		Targets:      cfg.targets,
		Seed:         cfg.seed,
		DurationSecs: cfg.duration.Seconds(),
		RatePerSec:   cfg.rate,
		Submissions:  len(arrivals),
	}
	var latencies []float64
	unique := make(map[string]bool)
	for _, o := range outcomes {
		switch {
		case o.code == http.StatusAccepted:
			rep.Accepted++
			unique[o.id] = true
			latencies = append(latencies, o.latency)
		case o.code == http.StatusOK:
			rep.Accepted++
			rep.Deduplicated++
			unique[o.id] = true
			latencies = append(latencies, o.latency)
		case o.code == http.StatusTooManyRequests:
			rep.Shed++
			latencies = append(latencies, o.latency)
		case o.code >= 500:
			rep.Errors5xx++
		default:
			rep.OtherErrors++
		}
	}
	if rep.Submissions > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Submissions)
	}
	rep.UniqueJobs = len(unique)
	rep.SubmitP50Sec = quantile(latencies, 0.50)
	rep.SubmitP99Sec = quantile(latencies, 0.99)

	completed, failed := awaitJobs(client, cfg, unique)
	rep.Completed = completed
	rep.Failed = failed
	if secs := time.Since(start).Seconds(); secs > 0 {
		rep.Throughput = float64(completed) / secs
	}

	for _, target := range cfg.targets {
		c := scrape(client, target)
		rep.Steals += c.Steals
		rep.Adoptions += c.Adoptions
		rep.PerInstance = append(rep.PerInstance, c)
	}
	return rep, nil
}

// submit posts one job and classifies the response.
func submit(client *http.Client, target string, body []byte, tenant string) outcome {
	req, err := http.NewRequest(http.MethodPost, target+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return outcome{code: -1}
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Ropus-Tenant", tenant)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	latency := time.Since(t0).Seconds()
	if err != nil {
		return outcome{code: -1, latency: latency}
	}
	defer resp.Body.Close()
	o := outcome{code: resp.StatusCode, latency: latency}
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		var st struct {
			ID string `json:"id"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			o.id = st.ID
		}
	}
	io.Copy(io.Discard, resp.Body)
	return o
}

// awaitJobs polls every accepted job until terminal or the wait budget
// runs out. Jobs are queried round-robin across targets: the fleet
// scanner makes any instance answer for any job.
func awaitJobs(client *http.Client, cfg config, ids map[string]bool) (completed, failed int) {
	deadline := time.Now().Add(cfg.wait)
	pending := make([]string, 0, len(ids))
	for id := range ids {
		pending = append(pending, id)
	}
	sort.Strings(pending)
	for i := 0; len(pending) > 0 && time.Now().Before(deadline); i++ {
		var still []string
		for _, id := range pending {
			target := cfg.targets[i%len(cfg.targets)]
			state := jobState(client, target, id)
			switch state {
			case serve.StateDone:
				completed++
			case serve.StateFailed:
				failed++
			default:
				still = append(still, id)
			}
		}
		pending = still
		if len(pending) > 0 {
			time.Sleep(200 * time.Millisecond)
		}
	}
	return completed, failed
}

func jobState(client *http.Client, target, id string) string {
	resp, err := client.Get(target + "/v1/jobs/" + id)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return ""
	}
	var st struct {
		State string `json:"state"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return ""
	}
	return st.State
}

// scrape pulls one instance's fleet counters from /metrics and its
// identity from /healthz.
func scrape(client *http.Client, target string) Counter {
	c := Counter{Target: target}
	if resp, err := client.Get(target + "/healthz"); err == nil {
		var health struct {
			Instance string `json:"instance"`
		}
		json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		c.Instance = health.Instance
	}
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return c
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return c
	}
	c.Steals = metricValue(data, "serve_jobs_stolen_total")
	c.Adoptions = metricValue(data, "serve_jobs_adopted_total")
	c.Completed = metricValue(data, "serve_jobs_completed_total")
	return c
}

// metricValue extracts an un-labelled counter sample from Prometheus
// text exposition; absent metrics read 0.
func metricValue(exposition []byte, name string) int64 {
	for _, line := range strings.Split(string(exposition), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
		if err != nil {
			return 0
		}
		return int64(math.Round(v))
	}
	return 0
}

// quantile is the nearest-rank quantile of an unsorted sample; 0 when
// empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
