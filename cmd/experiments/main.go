// Command experiments regenerates every table and figure of the R-Opus
// paper's evaluation (DSN 2006, section VII) from the synthetic
// case-study fleet and writes them as CSV files plus a human-readable
// summary on stdout.
//
// Usage:
//
//	experiments [-run all|fig3|fig6|fig7|fig8|table1|failover|mix] [-out DIR] [-seed N] [-quick]
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/experiments"
	"ropus/internal/obslog"
	"ropus/internal/resilience"
	"ropus/internal/telemetry"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run: all, fig3, fig6, fig7, fig8, table1, failover, mix")
		out     = flag.String("out", "results", "output directory for CSV files")
		seed    = flag.Int64("seed", 2006, "workload generator seed")
		quick   = flag.Bool("quick", false, "reduced search budget for smoke runs")
		timeout = flag.Duration("timeout", 0, "cancel the run after this duration (0 = unlimited); telemetry files are still flushed")
		workers = flag.Int("workers", 0, "parallel workers for table1/failover/mix (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		islands = flag.Int("islands", 0, "island count for each genetic search (0/1 = classic single population; deterministic per seed and island count at any worker count)")
		partApp = flag.Int("partition-apps", 0, "hierarchical consolidation: max applications per sub-pool (0 = flat placement)")
		ckpt    = flag.String("checkpoint", "", "crash-safe journal file for table1/failover/mix; completed units are fsync'd as they finish")
		resume  = flag.Bool("resume", false, "replay completed units from the -checkpoint journal instead of recomputing them")
		retries = flag.Int("retries", 2, "extra attempts per work unit after a transient failure (0 disables retry)")
		sdl     = flag.Duration("scenario-deadline", 0, "per-attempt deadline for each case/scenario; a timed-out attempt is retried (0 = none)")
		logFmt  = flag.String("log-format", "json", "structured log encoding on stderr: json, text, or off")
		logLvl  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()
	logger := obslog.Discard()
	if *logFmt != "off" {
		logger = obslog.New(os.Stderr, obslog.Options{
			Level:  obslog.ParseLevel(*logLvl),
			Format: *logFmt,
		})
	}
	// SIGINT/SIGTERM and -timeout cancel the compute-heavy experiments;
	// the deferred telemetry flush still writes the sidecar files.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	heal := healOpts{path: *ckpt, resume: *resume, retries: *retries, deadline: *sdl, islands: *islands, partitionApps: *partApp}
	if err := realMain(ctx, *run, *out, *seed, *quick, *workers, heal, logger); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// healOpts carries the parsed self-healing flags: retry policy plus
// crash-safe checkpoint/resume for the cancellable experiments.
type healOpts struct {
	path          string
	resume        bool
	retries       int
	deadline      time.Duration
	islands       int
	partitionApps int
}

// policy builds the deterministic retry policy. The backoff seed is
// fixed so a resumed run replays the same jitter schedule.
func (o healOpts) policy(h telemetry.Hooks) resilience.Policy {
	return resilience.Policy{
		MaxAttempts:    o.retries + 1,
		BaseDelay:      100 * time.Millisecond,
		MaxDelay:       2 * time.Second,
		Jitter:         0.2,
		Seed:           1,
		AttemptTimeout: o.deadline,
		Hooks:          h,
	}
}

// journal opens the checkpoint journal, binding it to the knobs that
// determine results (experiment selection, seed, quick, islands) but
// not to the worker count, so a journal resumes at any parallelism.
// The island count is folded in only when it changes results (> 1),
// and the hierarchical partition bound only when set (> 0), so
// journals written before the knobs existed keep replaying. Status is
// logged to stderr to keep stdout byte-identical across
// interrupted/resumed runs.
func (o healOpts) journal(run string, seed int64, quick bool, h telemetry.Hooks, logger *slog.Logger) (*checkpoint.Journal, error) {
	if o.path == "" {
		if o.resume {
			return nil, fmt.Errorf("-resume requires -checkpoint")
		}
		return nil, nil
	}
	hasher := checkpoint.NewHasher().String("experiments").String(run).Int(seed).Bool(quick)
	if o.islands > 1 {
		hasher = hasher.Int(int64(o.islands))
	}
	if o.partitionApps > 0 {
		hasher = hasher.String("hier").Int(int64(o.partitionApps))
	}
	hash := hasher.Sum()
	j, err := checkpoint.Open(o.path, hash, o.resume, h)
	if err != nil {
		return nil, err
	}
	if o.resume {
		logger.Info("checkpoint.resume", slog.Int("replayed", j.Replayed()), slog.String("path", o.path))
	} else {
		logger.Info("checkpoint.open", slog.String("path", o.path))
	}
	return j, nil
}

func realMain(ctx context.Context, run, out string, seed int64, quick bool, workers int, heal healOpts, logger *slog.Logger) error {
	// Correlate the run's logs and spans under a seed-derived trace ID,
	// mirroring the ropus CLI: re-running the same seed reproduces the ID.
	ctx = telemetry.WithTrace(ctx, telemetry.TraceContext{TraceID: telemetry.SeedTraceID("experiments", seed)})
	ctx = obslog.Into(ctx, logger)
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	set, err := experiments.Fleet(seed)
	if err != nil {
		return err
	}
	// Every run records its telemetry alongside the result CSVs: a
	// metrics snapshot (telemetry.json) and a Chrome trace_event file
	// (telemetry_trace.json) for chrome://tracing or Perfetto.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	hooks := telemetry.New(reg, tracer)
	defer func() {
		if err := writeTelemetry(out, reg, tracer); err != nil {
			logger.Error("telemetry.flush", slog.String("error", err.Error()))
		}
	}()
	journal, err := heal.journal(run, seed, quick, hooks, logger)
	if err != nil {
		return err
	}
	defer journal.Close()
	cfg := experiments.Table1Config{
		GASeed: 42, Quick: quick, Islands: heal.islands, PartitionApps: heal.partitionApps,
		Hooks: hooks, Workers: workers,
		Retry: heal.policy(hooks), Journal: journal,
	}

	want := func(name string) bool { return run == "all" || run == name }
	ran := false
	if want("fig3") {
		ran = true
		if err := runFig3(out); err != nil {
			return err
		}
	}
	if want("fig6") {
		ran = true
		if err := runFig6(out, set); err != nil {
			return err
		}
	}
	if want("fig7") {
		ran = true
		if err := runSweep(out, set, "fig7", experiments.Fig7, "MaxCapReduction (%)"); err != nil {
			return err
		}
	}
	if want("fig8") {
		ran = true
		if err := runSweep(out, set, "fig8", experiments.Fig8, "degraded measurements (%)"); err != nil {
			return err
		}
	}
	if want("table1") {
		ran = true
		if err := runTable1(ctx, out, set, cfg); err != nil {
			return err
		}
	}
	if want("failover") {
		ran = true
		if err := runFailover(ctx, set, cfg); err != nil {
			return err
		}
	}
	if want("mix") {
		ran = true
		if err := runMix(ctx, out, seed, quick, workers, hooks, heal.policy(hooks), journal); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", run)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("run cancelled: %w", context.Cause(ctx))
	}
	return nil
}

// writeTelemetry writes the run's metrics snapshot and span trace next
// to the result CSVs.
func writeTelemetry(out string, reg *telemetry.Registry, tracer *telemetry.Tracer) error {
	mf, err := os.Create(filepath.Join(out, "telemetry.json"))
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(mf); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(out, "telemetry_trace.json"))
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(tf); err != nil {
		tf.Close()
		return err
	}
	return tf.Close()
}

func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func runFig3(out string) error {
	rows, err := experiments.Fig3(0.5, 0.66)
	if err != nil {
		return err
	}
	csvRows := make([][]string, len(rows))
	for i, r := range rows {
		csvRows[i] = []string{fmtF(r.Theta), fmtF(r.Breakpoint), fmtF(r.MaxAllocTrend)}
	}
	path := filepath.Join(out, "fig3.csv")
	if err := writeCSV(path, []string{"theta", "breakpoint_p", "max_alloc_trend"}, csvRows); err != nil {
		return err
	}
	fmt.Println("== Figure 3: sensitivity of breakpoint and max allocation to theta ==")
	fmt.Println("   (Ulow,Uhigh)=(0.5,0.66); trend normalized to theta=0.5)")
	fmt.Printf("%8s %12s %15s\n", "theta", "breakpoint p", "max-alloc trend")
	for _, r := range rows {
		if int(r.Theta*1000)%100 != 0 { // print every 0.1 for readability
			continue
		}
		fmt.Printf("%8.2f %12.3f %15.3f\n", r.Theta, r.Breakpoint, r.MaxAllocTrend)
	}
	fmt.Println("   full curve:", path)
	fmt.Println()
	return nil
}

func runFig6(out string, set experiments.TraceSet) error {
	rows, err := experiments.Fig6(set)
	if err != nil {
		return err
	}
	header := []string{"app"}
	for _, lvl := range experiments.Fig6Levels {
		header = append(header, "p"+strconv.FormatFloat(lvl, 'g', -1, 64))
	}
	csvRows := make([][]string, len(rows))
	for i, r := range rows {
		row := []string{r.AppID}
		for _, v := range r.Percentiles {
			row = append(row, fmtF(v))
		}
		csvRows[i] = row
	}
	path := filepath.Join(out, "fig6.csv")
	if err := writeCSV(path, header, csvRows); err != nil {
		return err
	}
	fmt.Println("== Figure 6: top percentiles of normalized CPU demand (percent of peak) ==")
	fmt.Printf("%3s %-8s %8s %8s %8s %8s %8s\n", "#", "app", "99.9th", "99.5th", "99th", "98th", "97th")
	for i, r := range rows {
		fmt.Printf("%3d %-8s %8.1f %8.1f %8.1f %8.1f %8.1f\n", i+1, r.AppID,
			r.Percentiles[0], r.Percentiles[1], r.Percentiles[2], r.Percentiles[3], r.Percentiles[4])
	}
	fmt.Println("   csv:", path)
	fmt.Println()
	return nil
}

type sweepFn func(experiments.TraceSet, float64) ([]experiments.SweepRow, error)

func runSweep(out string, set experiments.TraceSet, name string, fn sweepFn, label string) error {
	for _, variant := range []struct {
		suffix string
		theta  float64
	}{
		{suffix: "a", theta: 0.95},
		{suffix: "b", theta: 0.60},
	} {
		rows, err := fn(set, variant.theta)
		if err != nil {
			return err
		}
		header := []string{"app", "none", "2h", "1h", "30m"}
		csvRows := make([][]string, len(rows))
		for i, r := range rows {
			row := []string{r.AppID}
			for _, v := range r.Values {
				row = append(row, fmtF(v))
			}
			csvRows[i] = row
		}
		path := filepath.Join(out, name+variant.suffix+".csv")
		if err := writeCSV(path, header, csvRows); err != nil {
			return err
		}
		fmt.Printf("== %s%s: %s, theta=%.2f ==\n", strings.ToUpper(name[:1])+name[1:], variant.suffix, label, variant.theta)
		fmt.Printf("%-8s %8s %8s %8s %8s\n", "app", "none", "2h", "1h", "30m")
		for _, r := range rows {
			fmt.Printf("%-8s %8.2f %8.2f %8.2f %8.2f\n", r.AppID, r.Values[0], r.Values[1], r.Values[2], r.Values[3])
		}
		fmt.Println("   csv:", path)
		fmt.Println()
	}
	return nil
}

func runTable1(ctx context.Context, out string, set experiments.TraceSet, cfg experiments.Table1Config) error {
	start := time.Now()
	rows, err := experiments.Table1(ctx, set, cfg)
	if err != nil {
		return err
	}
	csvRows := make([][]string, len(rows))
	for i, r := range rows {
		csvRows[i] = []string{
			strconv.Itoa(r.Case.ID),
			fmtF(r.Case.MDegr),
			fmtF(r.Case.Theta),
			r.Case.TDegr.String(),
			strconv.Itoa(r.Servers),
			fmtF(r.CRequ),
			fmtF(r.CPeak),
		}
	}
	path := filepath.Join(out, "table1.csv")
	if err := writeCSV(path, []string{"case", "mdegr_pct", "theta", "tdegr", "servers_16way", "crequ_cpu", "cpeak_cpu"}, csvRows); err != nil {
		return err
	}
	fmt.Println("== Table I: impact of Mdegr, Tdegr and theta on resource sharing ==")
	fmt.Printf("%4s %6s %6s %8s %14s %10s %10s\n",
		"case", "Mdegr", "theta", "Tdegr", "16-way servers", "CRequ CPU", "CPeak CPU")
	for _, r := range rows {
		tdegr := "none"
		if r.Case.TDegr > 0 {
			tdegr = r.Case.TDegr.String()
		}
		fmt.Printf("%4d %5.0f%% %6.2f %8s %14d %10.0f %10.0f\n",
			r.Case.ID, r.Case.MDegr, r.Case.Theta, tdegr, r.Servers, r.CRequ, r.CPeak)
	}
	fmt.Printf("   csv: %s (elapsed %v)\n\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

func runFailover(ctx context.Context, set experiments.TraceSet, cfg experiments.Table1Config) error {
	res, err := experiments.Failover(ctx, set, cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Section VI-C: failure planning (normal QoS = case 1, failure QoS = case 2) ==")
	fmt.Printf("normal mode servers: %d\n", res.NormalServers)
	for _, sc := range res.Report.Failures.Scenarios {
		verdict := "absorbed by remaining servers"
		switch {
		case sc.Err != nil:
			verdict = "INCONCLUSIVE (analysis failed)"
		case !sc.Feasible:
			verdict = "NOT absorbable"
		}
		if sc.Recovered {
			verdict += fmt.Sprintf(" (recovered on attempt %d)", sc.Attempts)
		}
		fmt.Printf("  failure of %-8s -> %d apps affected, %s\n",
			sc.FailedServer, len(sc.AffectedApps), verdict)
	}
	if extra, recovered, gaveUp := res.Report.Failures.Retries(); recovered > 0 || gaveUp > 0 {
		fmt.Printf("self-healing: %d extra attempt(s), %d scenario(s) recovered, %d gave up\n",
			extra, recovered, gaveUp)
	}
	if res.Report.Failures.SpareNeeded {
		fmt.Println("verdict: a spare server IS needed")
	} else {
		fmt.Println("verdict: no spare server needed; failure-mode QoS absorbs any single failure")
	}
	fmt.Println()
	return nil
}

func runMix(ctx context.Context, out string, seed int64, quick bool, workers int, hooks telemetry.Hooks, retry resilience.Policy, journal *checkpoint.Journal) error {
	rows, err := experiments.Mix(ctx, experiments.MixConfig{
		Seed: seed, Quick: quick, Hooks: hooks, Workers: workers,
		Retry: retry, Journal: journal,
	})
	if err != nil {
		return err
	}
	csvRows := make([][]string, len(rows))
	for i, r := range rows {
		csvRows[i] = []string{r.Algorithm, strconv.Itoa(r.Servers), fmtF(r.CRequ),
			strconv.FormatBool(r.Feasible)}
	}
	path := filepath.Join(out, "mix.csv")
	if err := writeCSV(path, []string{"algorithm", "servers", "crequ_cpu", "feasible"}, csvRows); err != nil {
		return err
	}
	fmt.Println("== Extra: mixed interactive/batch fleet, placement algorithm comparison ==")
	fmt.Println("   (beyond the paper: exploits day/night anti-correlation)")
	fmt.Printf("%-22s %8s %10s %9s\n", "algorithm", "servers", "CRequ CPU", "feasible")
	for _, r := range rows {
		fmt.Printf("%-22s %8d %10.0f %9v\n", r.Algorithm, r.Servers, r.CRequ, r.Feasible)
	}
	fmt.Println("   csv:", path)
	fmt.Println()
	return nil
}
