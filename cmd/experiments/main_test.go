package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"ropus/internal/obslog"
)

func TestRealMainFigures(t *testing.T) {
	out := t.TempDir()
	// Figures run in a few hundred milliseconds; Table 1 and failover
	// are covered by the benchmarks and internal/experiments tests.
	for _, run := range []string{"fig3", "fig6", "fig7", "fig8"} {
		run := run
		t.Run(run, func(t *testing.T) {
			if err := realMain(context.Background(), run, out, 2006, true, 0, healOpts{}, obslog.Discard()); err != nil {
				t.Fatal(err)
			}
		})
	}
	wantFiles := []string{
		"fig3.csv", "fig6.csv",
		"fig7a.csv", "fig7b.csv",
		"fig8a.csv", "fig8b.csv",
	}
	for _, name := range wantFiles {
		info, err := os.Stat(filepath.Join(out, name))
		if err != nil {
			t.Errorf("missing %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRealMainHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("table1/failover/mix take ~30s even in quick mode")
	}
	out := t.TempDir()
	for _, run := range []string{"table1", "failover", "mix"} {
		run := run
		t.Run(run, func(t *testing.T) {
			if err := realMain(context.Background(), run, out, 2006, true, 0, healOpts{}, obslog.Discard()); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, name := range []string{"table1.csv", "mix.csv"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestRealMainUnknownExperiment(t *testing.T) {
	if err := realMain(context.Background(), "nope", t.TempDir(), 1, true, 0, healOpts{}, obslog.Discard()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRealMainBadOutputDir(t *testing.T) {
	// A file in place of the output directory must fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain(context.Background(), "fig3", blocker, 1, true, 0, healOpts{}, obslog.Discard()); err == nil {
		t.Error("file as output dir accepted")
	}
}

func TestRealMainDeterministicCSV(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	if err := realMain(context.Background(), "fig6", a, 2006, true, 0, healOpts{}, obslog.Discard()); err != nil {
		t.Fatal(err)
	}
	if err := realMain(context.Background(), "fig6", b, 2006, true, 0, healOpts{}, obslog.Discard()); err != nil {
		t.Fatal(err)
	}
	fa, err := os.ReadFile(filepath.Join(a, "fig6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(b, "fig6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(fa) != string(fb) {
		t.Error("fig6.csv is not deterministic across runs")
	}
}
