package ropus

import (
	"context"
	"testing"
	"time"
)

// The facade tests exercise the library exactly as a downstream user
// would: only through the root package's exported API.

func caseStudyRequirement() Requirement {
	return Requirement{
		Normal:  AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100},
		Failure: AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute},
	}
}

func smallFleet(t *testing.T) TraceSet {
	t.Helper()
	set, err := GenerateFleet(FleetConfig{
		Spiky: 1, Bursty: 2, Smooth: 3,
		Weeks: 1, Interval: time.Hour, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestPublicPipeline(t *testing.T) {
	ga := DefaultGAConfig(3)
	ga.MaxGenerations = 40
	ga.Stagnation = 10
	f, err := NewFramework(Config{
		Commitment:           PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ga,
		Tolerance:            0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := smallFleet(t)
	report, err := f.Run(context.Background(), set, Requirements{Default: caseStudyRequirement()})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Consolidation.Plan.Feasible {
		t.Error("plan infeasible")
	}
	if report.Consolidation.ServersUsed() >= len(set) {
		t.Errorf("no consolidation: %d servers for %d apps",
			report.Consolidation.ServersUsed(), len(set))
	}
	if report.Failures == nil {
		t.Error("no failure report")
	}
}

func TestPublicTranslate(t *testing.T) {
	tr, err := NewTrace("a", DefaultInterval, []float64{1, 2, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	q := AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100}
	part, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if part.DMax != 4 {
		t.Errorf("DMax = %v, want 4", part.DMax)
	}
	p, err := Breakpoint(0.5, 0.66, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if part.P != p {
		t.Errorf("partition breakpoint %v != Breakpoint() %v", part.P, p)
	}
	if got := MaxCapReductionBound(0.66, 0.9); got < 0.26 || got > 0.27 {
		t.Errorf("MaxCapReductionBound = %v, want ~0.267", got)
	}
}

func TestPublicStressAndWorkloadManager(t *testing.T) {
	r, err := DeriveUtilizationRange(
		StressApplication{ServiceTime: 100 * time.Millisecond, CPUs: 1},
		StressTargets{Ideal: 200 * time.Millisecond, Acceptable: 300 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	q := AppQoS{ULow: r.ULow, UHigh: r.UHigh, UDegr: 0.9, MPercent: 97}
	set := smallFleet(t)
	part, err := Translate(set[0], q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkloadManager(context.Background(), part.MaxAllocation()+1, []Container{
		{Demand: set[0], Partition: part},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CheckCompliance(res.Containers[0], q, set[0].Interval)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Satisfied {
		t.Errorf("lag-0 replay at full allocation should satisfy the QoS: %+v", comp)
	}
}

func TestPublicCaseStudyFleet(t *testing.T) {
	set, err := CaseStudyFleet(2006)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 26 {
		t.Errorf("fleet size %d, want 26", len(set))
	}
	// Determinism through the public API.
	again, err := CaseStudyFleet(2006)
	if err != nil {
		t.Fatal(err)
	}
	for i := range set {
		for j := range set[i].Samples {
			if set[i].Samples[j] != again[i].Samples[j] {
				t.Fatalf("fleet not deterministic at app %d sample %d", i, j)
			}
		}
	}
}

func TestPublicConstants(t *testing.T) {
	if CoS1.String() != "CoS1" || CoS2.String() != "CoS2" {
		t.Error("class-of-service constants broken")
	}
	if DefaultInterval != 5*time.Minute {
		t.Errorf("DefaultInterval = %v, want 5m", DefaultInterval)
	}
}
