# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race cover bench bench-smoke bench-batched bench-obs-overhead bench-fleet experiments fuzz golden serve-e2e fleet-e2e clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Per-function coverage report; the profile lands in cover.out for
# `go tool cover -html=cover.out` drill-down.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick benchmark pass: every benchmark at a 100ms budget. CI runs this
# as a smoke job and uploads the output next to BENCH_perf_parallel.json.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=100ms ./... | tee bench_smoke.txt

# The batched-replay / island-GA perf surface: scalar vs batched replay,
# the K-ary search's pass economics, and the Table1 consolidation at 1,
# 2 and 4 islands. Hand-captured runs of this target feed
# BENCH_perf_batched.json; CI runs it as part of the bench smoke job.
bench-batched:
	$(GO) test -run '^$$' -bench 'BenchmarkReplayScalar|BenchmarkReplayBatch|BenchmarkSearchBisect|BenchmarkSearchKary' -benchmem -benchtime 100x ./internal/sim/ | tee bench_batched.txt
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Consolidation' -benchtime 1x . | tee -a bench_batched.txt

# Prove the disabled-observability hot paths are still an inlined nil
# check: run the no-op benchmarks, record them in BENCH_obs_overhead.json
# and fail if any exceeds the 5 ns/op budget.
bench-obs-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead/nop' -benchtime 100ms ./internal/telemetry/ | tee bench_obs.txt
	@awk 'BEGIN { printf "{\n  \"budget_ns_per_op\": 5,\n  \"benchmarks\": [\n"; n = 0; bad = 0 } \
	  / ns\/op/ && /nop-/ { if (n++) printf ",\n"; printf "    {\"name\": \"%s\", \"ns_per_op\": %s}", $$1, $$3; if ($$3 + 0 > 5) bad++ } \
	  END { printf "\n  ],\n  \"pass\": %s\n}\n", (bad == 0 && n > 0) ? "true" : "false"; exit (bad > 0 || n == 0) }' \
	  bench_obs.txt > BENCH_obs_overhead.json \
	  || { cat BENCH_obs_overhead.json; echo "FAIL: a disabled observability path exceeds the 5 ns/op budget"; exit 1; }
	@rm -f bench_obs.txt
	@cat BENCH_obs_overhead.json

# Fleet-scale placement benchmark: the full 1000-app hierarchical
# pipeline, recorded in BENCH_fleet_scale.json with a wall-clock
# regression gate. CI runs this in the bench smoke job.
bench-fleet:
	ROPUS_BENCH_FLEET=1 $(GO) test -run TestFleetScaleBench -count=1 -v .

# Regenerate every table and figure of the paper's evaluation into results/.
experiments:
	$(GO) run ./cmd/experiments

fuzz:
	$(GO) test -fuzz FuzzReadCSV -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzReadJSON -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/checkpoint/
	$(GO) test -fuzz FuzzBreakpoint -fuzztime 30s ./internal/portfolio/
	$(GO) test -fuzz FuzzTranslate -fuzztime 30s ./internal/portfolio/
	$(GO) test -fuzz FuzzPartition -fuzztime 30s ./internal/partition/
	$(GO) test -fuzz FuzzFleetGen -fuzztime 30s ./internal/workload/

# Regenerate the golden corpus after a deliberate behavioural change.
golden:
	$(GO) test ./cmd/ropus -run Golden -update

# Drain/resume contract of `ropus serve` against a real process.
serve-e2e: build
	$(GO) build -o ropus-cli ./cmd/ropus
	ROPUS=./ropus-cli bash scripts/serve_e2e.sh

# Fleet contract: three instances, one state dir, loadgen-driven, one
# instance kill -9ed mid-sweep; emits BENCH_serve_fleet.json.
fleet-e2e: build
	$(GO) build -o ropus-cli ./cmd/ropus
	$(GO) build -o ropus-loadgen ./cmd/loadgen
	ROPUS=./ropus-cli LOADGEN=./ropus-loadgen bash scripts/fleet_e2e.sh

clean:
	rm -rf results test_output.txt bench_output.txt bench_smoke.txt bench_batched.txt bench_obs.txt cover.out ropus-cli ropus-loadgen
