# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation into results/.
experiments:
	$(GO) run ./cmd/experiments

fuzz:
	$(GO) test -fuzz FuzzReadCSV -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzReadJSON -fuzztime 30s ./internal/trace/

clean:
	rm -rf results test_output.txt bench_output.txt
